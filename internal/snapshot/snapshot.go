// Package snapshot is the serialization substrate of the
// checkpoint/resume subsystem: a compact varint codec (Writer/Reader)
// and a versioned, checksummed envelope (Seal/Open) around opaque
// payloads. It is a leaf package — every state-bearing package
// (sim, workload, monitor, resinfo, core) encodes its own state with
// the codec, and the core composes the sections into one sealed
// snapshot.
//
// Design constraints:
//
//   - Determinism: equal state encodes to equal bytes. The codec has
//     no maps, no pointers, no ambient inputs; callers must iterate
//     collections in a canonical order.
//   - Robustness: Open rejects corrupt or version-skewed envelopes
//     with structured errors (ErrCorrupt, ErrVersion), and the Reader
//     latches the first decode failure instead of panicking, so a
//     decoder over arbitrary bytes degrades to an error, never a
//     crash (FuzzDecodeSnapshot gates this).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// ErrCorrupt marks snapshots that fail structural validation: bad
// magic, length mismatch, checksum mismatch, truncated or
// out-of-range payload fields. Test with errors.Is.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrVersion marks snapshots whose format version this build cannot
// read (written by a newer build, or an unknown kind). Test with
// errors.Is.
var ErrVersion = errors.New("snapshot: unsupported version")

// corruptf builds an ErrCorrupt-wrapped error with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Writer accumulates a snapshot payload. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the encoded size so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// I64 appends a zigzag-encoded signed varint.
func (w *Writer) I64(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends one byte (0 or 1).
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends a float64 as its IEEE 754 bit pattern (varint-packed;
// exact round trip, including NaN payloads and signed zero).
func (w *Writer) F64(v float64) {
	w.U64(math.Float64bits(v))
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// Reader decodes a snapshot payload. The first malformed field
// latches an ErrCorrupt-wrapped error; every subsequent read returns
// zero values, so decoders can run to completion and check Err once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left undecoded.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// fail latches the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

// U64 decodes an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// I64 decodes a zigzag-encoded signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Int decodes an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool decodes one byte as a bool; any value other than 0 or 1 is
// corruption.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.fail("invalid bool byte %d at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

// F64 decodes a float64 bit pattern.
func (r *Reader) F64() float64 {
	return math.Float64frombits(r.U64())
}

// Str decodes a length-prefixed string. The length is validated
// against the remaining bytes before any allocation.
func (r *Reader) Str() string {
	n := r.Int()
	if r.err != nil {
		return ""
	}
	if n < 0 || n > r.Remaining() {
		r.fail("string length %d exceeds %d remaining bytes", n, r.Remaining())
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Count decodes a collection length and validates it against the
// remaining payload (each element takes at least one byte), so a
// corrupt count can never drive an attacker-sized allocation.
func (r *Reader) Count() int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Remaining() {
		r.fail("collection length %d exceeds %d remaining bytes", n, r.Remaining())
		return 0
	}
	return n
}

// Close verifies the payload was consumed exactly; trailing garbage
// is corruption.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return corruptf("%d trailing bytes after payload", r.Remaining())
	}
	return nil
}

// Envelope layout (all integers varint unless noted):
//
//	magic   [6]byte  "DRSNAP"
//	kind    Str      payload kind, e.g. "dreamsim-core"
//	version U64      format version of the payload
//	length  U64      payload byte count
//	payload [length]byte
//	crc32   [4]byte  little-endian IEEE CRC of everything above
var magic = []byte("DRSNAP")

// Seal wraps payload in a versioned, checksummed envelope.
func Seal(kind string, version uint64, payload []byte) []byte {
	var w Writer
	w.buf = append(w.buf, magic...)
	w.Str(kind)
	w.U64(version)
	w.U64(uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	sum := crc32.ChecksumIEEE(w.buf)
	return binary.LittleEndian.AppendUint32(w.buf, sum)
}

// Open validates an envelope and returns its payload. It fails with
// ErrCorrupt on any structural damage (magic, length, checksum) and
// with ErrVersion when the kind does not match or the version is
// newer than maxVersion — the "written by a newer build" case a
// clear error must distinguish from corruption.
func Open(data []byte, kind string, maxVersion uint64) (payload []byte, version uint64, err error) {
	if len(data) < len(magic)+4 {
		return nil, 0, corruptf("%d bytes is shorter than any envelope", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, 0, corruptf("checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	for i := range magic {
		if body[i] != magic[i] {
			return nil, 0, corruptf("bad magic %q", body[:len(magic)])
		}
	}
	r := NewReader(body[len(magic):])
	gotKind := r.Str()
	version = r.U64()
	n := r.U64()
	if r.Err() != nil {
		return nil, 0, r.Err()
	}
	if gotKind != kind {
		return nil, 0, fmt.Errorf("%w: snapshot kind %q, this build reads %q", ErrVersion, gotKind, kind)
	}
	if version > maxVersion {
		return nil, 0, fmt.Errorf("%w: snapshot format v%d, this build reads up to v%d (written by a newer build?)",
			ErrVersion, version, maxVersion)
	}
	if n != uint64(r.Remaining()) {
		return nil, 0, corruptf("payload length %d, envelope holds %d", n, r.Remaining())
	}
	return body[len(body)-r.Remaining():], version, nil
}
