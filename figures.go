package dreamsim

import (
	"fmt"
	"sort"
	"strings"

	"dreamsim/internal/metrics"
	"dreamsim/internal/plot"
)

// FigureID names one figure of the paper's evaluation section.
type FigureID string

// The nine evaluation figures of the paper.
const (
	Fig6a FigureID = "6a" // avg wasted area per task, 100 nodes
	Fig6b FigureID = "6b" // avg wasted area per task, 200 nodes
	Fig7a FigureID = "7a" // avg reconfiguration count per node, 100 nodes
	Fig7b FigureID = "7b" // avg reconfiguration count per node, 200 nodes
	Fig8a FigureID = "8a" // avg waiting time per task, 100 nodes
	Fig8b FigureID = "8b" // avg waiting time per task, 200 nodes
	Fig9a FigureID = "9a" // avg scheduling steps per task, 200 nodes
	Fig9b FigureID = "9b" // total scheduler workload, 200 nodes
	Fig10 FigureID = "10" // avg configuration time per task, 200 nodes
)

// figureSpec describes how to regenerate one figure.
type figureSpec struct {
	nodes  int
	title  string
	ylabel string
	metric func(Result) float64
	// expectPartialBelow records the paper's reported ordering: true
	// when the "with partial configuration" curve lies below the
	// "without" curve.
	expectPartialBelow bool
}

// figureRegistry maps each paper figure to its regeneration recipe.
var figureRegistry = map[FigureID]figureSpec{
	Fig6a: {100, "Fig. 6a: Average wasted area per task (100 nodes)", "area units",
		func(r Result) float64 { return r.AvgWastedAreaPerTask }, true},
	Fig6b: {200, "Fig. 6b: Average wasted area per task (200 nodes)", "area units",
		func(r Result) float64 { return r.AvgWastedAreaPerTask }, true},
	Fig7a: {100, "Fig. 7a: Average reconfiguration count per node (100 nodes)", "reconfigurations",
		func(r Result) float64 { return r.AvgReconfigCountPerNode }, false},
	Fig7b: {200, "Fig. 7b: Average reconfiguration count per node (200 nodes)", "reconfigurations",
		func(r Result) float64 { return r.AvgReconfigCountPerNode }, false},
	Fig8a: {100, "Fig. 8a: Average waiting time per task (100 nodes)", "timeticks",
		func(r Result) float64 { return r.AvgWaitingTimePerTask }, true},
	Fig8b: {200, "Fig. 8b: Average waiting time per task (200 nodes)", "timeticks",
		func(r Result) float64 { return r.AvgWaitingTimePerTask }, true},
	Fig9a: {200, "Fig. 9a: Average scheduling steps per task (200 nodes)", "search steps",
		func(r Result) float64 { return r.AvgSchedulingStepsPerTask }, true},
	Fig9b: {200, "Fig. 9b: Total scheduler workload (200 nodes)", "search steps",
		func(r Result) float64 { return float64(r.TotalSchedulerWorkload) }, true},
	Fig10: {200, "Fig. 10: Average configuration time per task (200 nodes)", "timeticks",
		func(r Result) float64 { return r.AvgReconfigTimePerTask }, false},
}

// FigureIDs lists all reproducible figures in paper order.
func FigureIDs() []FigureID {
	return []FigureID{Fig6a, Fig6b, Fig7a, Fig7b, Fig8a, Fig8b, Fig9a, Fig9b, Fig10}
}

// PaperTaskCounts is the task-count grid of the paper's x axes
// ("total tasks generated", 1000…100000).
var PaperTaskCounts = []int{1000, 2000, 5000, 10000, 20000, 50000, 100000}

// ScaledTaskCounts returns the paper grid capped at max tasks — handy
// for quick sweeps (e.g. ScaledTaskCounts(10000)).
func ScaledTaskCounts(max int) []int {
	var out []int
	for _, n := range PaperTaskCounts {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// Figure is the regenerated data of one paper figure: the two curves
// ("without" = full reconfiguration, "with" = partial) over the task
// grid.
type Figure struct {
	ID         FigureID
	Title      string
	XLabel     string
	YLabel     string
	Nodes      int
	TaskCounts []int
	Without    []float64 // full reconfiguration
	With       []float64 // partial reconfiguration

	// PartialBelowExpected echoes the paper's reported ordering for
	// this figure, letting callers verify the reproduced shape.
	PartialBelowExpected bool
}

// RunFigure regenerates one figure over the given task grid (nil =
// PaperTaskCounts). All runs share base's parameters except node
// count (fixed by the figure), task count (the x axis) and scenario.
// The underlying cells run through the matrix engine, so
// base.Parallelism of them execute concurrently.
func RunFigure(id FigureID, taskCounts []int, base Params) (Figure, error) {
	spec, ok := figureRegistry[id]
	if !ok {
		return Figure{}, fmt.Errorf("dreamsim: unknown figure %q", id)
	}
	m, err := RunMatrix(base, []int{spec.nodes}, taskCounts, nil)
	if err != nil {
		return Figure{}, fmt.Errorf("dreamsim: figure %s: %w", id, err)
	}
	return m.Figure(id)
}

// ShapeHolds reports whether the paper's curve ordering holds at
// every sampled task count.
func (f Figure) ShapeHolds() bool {
	for i := range f.TaskCounts {
		if f.PartialBelowExpected && !(f.With[i] < f.Without[i]) {
			return false
		}
		if !f.PartialBelowExpected && !(f.With[i] > f.Without[i]) {
			return false
		}
	}
	return true
}

// CSV renders the figure data as comma-separated rows.
func (f Figure) CSV() string {
	var cw, cwo metrics.Series
	cwo.Name = "without partial configuration"
	cw.Name = "with partial configuration"
	for i, n := range f.TaskCounts {
		cwo.Add(float64(n), f.Without[i])
		cw.Add(float64(n), f.With[i])
	}
	mf := metrics.Figure{
		ID: string(f.ID), Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel,
		Series: []metrics.Series{cwo, cw},
	}
	return mf.CSV()
}

// Plot renders the figure as an ASCII chart.
func (f Figure) Plot() string {
	xs := make([]float64, len(f.TaskCounts))
	for i, n := range f.TaskCounts {
		xs[i] = float64(n)
	}
	return plot.Chart{
		Title:  f.Title,
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		Series: []plot.Series{
			{Name: "without partial configuration", Glyph: 'o', X: xs, Y: f.Without},
			{Name: "with partial configuration", Glyph: '+', X: xs, Y: f.With},
		},
	}.Render()
}

// Summary renders a one-line verdict: the ordering the paper reports
// and whether this regeneration reproduces it.
func (f Figure) Summary() string {
	rel := "partial < full"
	if !f.PartialBelowExpected {
		rel = "partial > full"
	}
	verdict := "REPRODUCED"
	if !f.ShapeHolds() {
		verdict = "NOT reproduced"
	}
	return fmt.Sprintf("Fig %-3s expected %s: %s", f.ID, rel, verdict)
}

// FigureTable renders the numeric figure data as a text table.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-10s %18s %18s\n", f.Title, "tasks", "without partial", "with partial")
	for i, n := range f.TaskCounts {
		fmt.Fprintf(&b, "%-10d %18.2f %18.2f\n", n, f.Without[i], f.With[i])
	}
	return b.String()
}

// SortedPhaseNames returns the phase keys of a result in stable order
// (helper for deterministic printing).
func SortedPhaseNames(r Result) []string {
	out := make([]string, 0, len(r.Phases))
	for k := range r.Phases {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
