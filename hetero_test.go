package dreamsim_test

import (
	"testing"

	"dreamsim"
)

// heteroParams enables the capability extension at a rate where some
// configurations become hard (but not impossible) to place.
func heteroParams(nodeProb, cfgProb float64) dreamsim.Params {
	p := dreamsim.DefaultParams()
	p.Nodes = 40
	p.Tasks = 600
	p.CapKinds = []string{"bram", "dsp", "serdes"}
	p.NodeCapProb = nodeProb
	p.ConfigCapProb = cfgProb
	return p
}

func TestHeteroRunCompletes(t *testing.T) {
	res, err := dreamsim.Run(heteroParams(0.6, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTasks+res.TotalDiscardedTasks != res.TotalTasks {
		t.Fatal("accounting broken under heterogeneity")
	}
	if res.CompletedTasks == 0 {
		t.Fatal("nothing completed")
	}
}

func TestHeteroScarcityRaisesWaits(t *testing.T) {
	// With rare capabilities, compatible nodes are scarce: waits (or
	// discards) must rise relative to the homogeneous baseline.
	base := heteroParams(0, 0)
	base.CapKinds = nil
	homo, err := dreamsim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	scarce, err := dreamsim.Run(heteroParams(0.3, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	pressureHomo := homo.AvgWaitingTimePerTask + 1e6*float64(homo.TotalDiscardedTasks)
	pressureScarce := scarce.AvgWaitingTimePerTask + 1e6*float64(scarce.TotalDiscardedTasks)
	if !(pressureScarce > pressureHomo) {
		t.Fatalf("capability scarcity did not add pressure: %.0f vs %.0f",
			pressureScarce, pressureHomo)
	}
}

func TestHeteroValidation(t *testing.T) {
	p := heteroParams(0, 0.5) // configs require caps nodes never offer
	if _, err := dreamsim.Run(p); err == nil {
		t.Fatal("impossible capability setup accepted")
	}
	p = heteroParams(1.5, 0)
	if _, err := dreamsim.Run(p); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestHeteroDeterministicAcrossScenarios(t *testing.T) {
	p := heteroParams(0.6, 0.3)
	full, partial, err := dreamsim.Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalTasks != partial.TotalTasks {
		t.Fatal("scenarios diverged under heterogeneity")
	}
	// Headline ordering survives heterogeneity.
	if !(partial.AvgWastedAreaPerTask < full.AvgWastedAreaPerTask) {
		t.Fatalf("wasted area partial %.1f !< full %.1f under heterogeneity",
			partial.AvgWastedAreaPerTask, full.AvgWastedAreaPerTask)
	}
}
