//go:build invariants

package dreamsim_test

import (
	"runtime"
	"testing"

	"dreamsim"
)

// peakHeap runs f and estimates the heap growth it caused, in bytes:
// HeapAlloc is sampled after a pre-run GC and again right after f
// returns, before a collection can shrink the run's working set — so
// the delta approximates the run's peak retained allocation.
func peakHeap(f func()) uint64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	var after runtime.MemStats
	runtime.ReadMemStats(&after) // no GC yet: garbage from f still counts toward the peak
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// TestStreamedHeapCeiling is the streaming engine's memory-regression
// gate: peak heap growth of a streamed run must be governed by the
// node count and the monitoring window, not the task count. A 10x
// task-count increase at fixed nodes must stay within 2x the smaller
// run's heap growth (plus a fixed slack for runtime noise), which an
// O(tasks) engine cannot do.
func TestStreamedHeapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("memory ceiling needs the full-size runs")
	}
	run := func(tasks int) {
		p := dreamsim.DefaultParams()
		// 2000 nodes keeps the cluster load below saturation at the
		// default arrival rate, so the live-task population (and with
		// it the streamed heap) is governed by nodes, not task count.
		p.Nodes = 2000
		p.Tasks = tasks
		p.PartialReconfig = true
		p.FastSearch = true
		p.Stream = true
		if _, err := dreamsim.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	run(1000) // warm up: pools, lazy runtime structures, code paths

	peak10k := peakHeap(func() { run(10_000) })
	peak100k := peakHeap(func() { run(100_000) })
	t.Logf("streamed peak heap growth: 10k tasks %.2f MiB, 100k tasks %.2f MiB",
		float64(peak10k)/(1<<20), float64(peak100k)/(1<<20))

	const slack = 8 << 20 // runtime noise floor, bytes
	if peak100k > 2*peak10k+slack {
		t.Fatalf("streamed heap scales with task count: 100k-task peak %d B > 2x 10k-task peak %d B + %d B slack",
			peak100k, peak10k, slack)
	}
}

// scenarioCeilingSpec is the multi-class diurnal workload of the
// scenario heap gate: bursty gamma/weibull arrivals, a rate timeline
// and a spike, with the task count injected per run. The arrival
// shape is deliberately the stress case — bursty multi-class merging
// is where a scenario source would most plausibly accumulate state.
const scenarioCeilingSpec = `dreamsim-scenario v1
name ceiling-diurnal
interval 50
class batch
  fraction 0.7
  arrival gamma 2
  reqtime 1000 80000 lognormal
end
class interactive
  fraction 0.3
  arrival weibull 0.6
  reqtime 100 4000 uniform
end
timeline
  0 0.5
  50000 1.5
  100000 0.5
end
event spike 60000 62000 3
`

// TestScenarioStreamedHeapCeiling extends the memory-regression gate
// to the scenario compiler: a streamed 5000-node multi-class diurnal
// run must keep its peak heap governed by the node count and live
// tasks, independent of how many tasks flow through — the scenario
// source recycles through the same free list as the Generator.
func TestScenarioStreamedHeapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("memory ceiling needs the full-size runs")
	}
	run := func(tasks int) {
		p := dreamsim.DefaultParams()
		// 5000 nodes keeps the bursty multi-class load below
		// saturation, so the live-task population is node-governed.
		p.Nodes = 5000
		p.Tasks = tasks
		p.PartialReconfig = true
		p.FastSearch = true
		p.Stream = true
		p.ScenarioText = scenarioCeilingSpec
		if _, err := dreamsim.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	run(1000) // warm up: pools, lazy runtime structures, code paths

	peak10k := peakHeap(func() { run(10_000) })
	peak100k := peakHeap(func() { run(100_000) })
	t.Logf("streamed scenario peak heap growth: 10k tasks %.2f MiB, 100k tasks %.2f MiB",
		float64(peak10k)/(1<<20), float64(peak100k)/(1<<20))

	const slack = 8 << 20
	if peak100k > 2*peak10k+slack {
		t.Fatalf("streamed scenario heap scales with task count: 100k-task peak %d B > 2x 10k-task peak %d B + %d B slack",
			peak100k, peak10k, slack)
	}
}

// TestMaterializedHeapGrowsWithTasks sanity-checks the gate itself: in
// the materialized monitor mode (full sample retention) heap growth
// DOES follow the run length, so the ceiling assertion above is
// actually measuring the streaming discipline, not an artifact of the
// harness.
func TestMaterializedHeapGrowsWithTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("memory growth needs the full-size runs")
	}
	run := func(tasks int) {
		p := dreamsim.DefaultParams()
		p.Nodes = 2000 // same balanced shape as the ceiling test
		p.Tasks = tasks
		p.PartialReconfig = true
		p.FastSearch = true
		p.SampleEvery = 1 // retain the full monitoring series
		if _, err := dreamsim.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	run(1000)
	small := peakHeap(func() { run(10_000) })
	large := peakHeap(func() { run(100_000) })
	t.Logf("materialized peak heap growth: 10k tasks %.2f MiB, 100k tasks %.2f MiB",
		float64(small)/(1<<20), float64(large)/(1<<20))
	if large < 2*small {
		t.Fatalf("expected materialized heap to scale with task count (got %d B -> %d B); the ceiling gate may be vacuous",
			small, large)
	}
}
