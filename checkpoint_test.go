package dreamsim

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dreamsim/internal/exec"
)

// The checkpoint property: pausing a run at any tick boundary,
// serializing it, and restoring it — in-process here; across a
// SIGKILL'd server process in cmd/dreamserve — produces a remainder
// byte-identical to the run that never paused. reflect.DeepEqual on
// Result covers every public metric AND the unexported report, XML,
// per-class and timeline-text blocks.

const checkpointScenario = `dreamsim-scenario v1
tasks 400
interval 40
class batch
  fraction 0.5
  arrival gamma 1.5
  reqtime 500 20000 uniform
end
class interactive
  fraction 0.5
  arrival poisson
  reqtime 100 2000 uniform
end
`

// checkpointCase derives one randomized parameter set covering the
// checkpointable surface: both reconfiguration methods, streamed and
// materialized memory disciplines, every placement policy (random-fit
// exercises the policy RNG stream), fault streams and scripts,
// multi-class scenarios, plain and windowed monitoring.
func checkpointCase(i int, rnd *rand.Rand) Params {
	p := DefaultParams()
	p.Seed = uint64(1000 + i)
	p.Nodes = 20 + rnd.Intn(40)
	p.Configs = 10 + rnd.Intn(20)
	p.Tasks = 100 + rnd.Intn(300)
	p.PartialReconfig = rnd.Intn(2) == 0
	p.Stream = rnd.Intn(2) == 0
	p.Placement = []string{"best-fit", "first-fit", "worst-fit", "random-fit"}[rnd.Intn(4)]
	p.LoadBalance = rnd.Intn(2) == 0
	if rnd.Intn(3) == 0 {
		p.MaxSusRetries = int64(1 + rnd.Intn(5))
	}
	if rnd.Intn(4) == 0 {
		p.TickStep = true
	}
	if rnd.Intn(2) == 0 {
		p.FastSearch = true
		p.FastSearchCutoff = 1
	}
	if rnd.Intn(3) == 0 {
		p.NetworkDelayRange = [2]int64{1, 20}
	}
	switch rnd.Intn(3) {
	case 1:
		p.FaultCrashRate = 0.002
		p.FaultMeanDowntime = 200
		p.FaultReconfigRate = 0.001
	case 2:
		p.FaultScript = "crash@500:1,cfail@700,recover@900:1,crash@1500:3,recover@2200:3"
	}
	if rnd.Intn(2) == 0 {
		p.SampleEvery = 1 + rnd.Intn(8)
		if rnd.Intn(2) == 0 {
			p.WindowSamples = 16
		}
	}
	if rnd.Intn(4) == 0 {
		p.ScenarioText = checkpointScenario
	}
	return p
}

// runCheckpointed executes p, pausing at pseudo-random tick
// boundaries; at each pause the run is serialized and a fresh run is
// restored from the snapshot bytes. Returns the final result and how
// many serialize/restore hops happened.
func runCheckpointed(p Params, pauseSeed int64) (Result, int, error) {
	rnd := rand.New(rand.NewSource(pauseSeed))
	run, err := StartRun(p)
	if err != nil {
		return Result{}, 0, fmt.Errorf("StartRun: %w", err)
	}
	hops := 0
	for {
		target := run.Processed() + uint64(1+rnd.Intn(400))
		done := run.RunUntil(func(now int64, processed uint64) bool {
			return processed >= target
		})
		if done {
			break
		}
		snap, err := run.Snapshot()
		if err != nil {
			return Result{}, hops, fmt.Errorf("Snapshot after %d events: %w", run.Processed(), err)
		}
		run, err = ResumeRun(p, snap)
		if err != nil {
			return Result{}, hops, fmt.Errorf("ResumeRun after %d events: %w", run.Processed(), err)
		}
		hops++
	}
	res, err := run.Finish()
	if err != nil {
		return Result{}, hops, fmt.Errorf("Finish: %w", err)
	}
	return res, hops, nil
}

// TestCheckpointRestoreEquivalence is the property suite: 100
// randomized runs, each paused/serialized/restored at randomized
// boundaries, each compared DeepEqual against its uninterrupted twin.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	cases := 100
	if testing.Short() {
		cases = 12
	}
	rnd := rand.New(rand.NewSource(7))
	totalHops := 0
	for i := 0; i < cases; i++ {
		p := checkpointCase(i, rnd)
		pauseSeed := rnd.Int63()
		t.Run(fmt.Sprintf("case%03d", i), func(t *testing.T) {
			ref, err := Run(p)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			got, hops, err := runCheckpointed(p, pauseSeed)
			if err != nil {
				t.Fatal(err)
			}
			totalHops += hops
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("restored run diverged from uninterrupted run (%d restore hops)\nref: %+v\ngot: %+v", hops, ref, got)
			}
		})
	}
	if !testing.Short() && totalHops == 0 {
		t.Fatal("no case ever paused — the property was not exercised")
	}
}

// TestCheckpointEquivalenceAcrossWorkers runs checkpointed cases on
// the exec worker pool at 1, 4 and 8 workers: restored runs must not
// share any state, so concurrent restore/resume cycles still match
// their sequential references.
func TestCheckpointEquivalenceAcrossWorkers(t *testing.T) {
	const n = 8
	rnd := rand.New(rand.NewSource(11))
	params := make([]Params, n)
	pauseSeeds := make([]int64, n)
	refs := make([]Result, n)
	for i := range params {
		params[i] = checkpointCase(200+i, rnd)
		pauseSeeds[i] = rnd.Int63()
		ref, err := Run(params[i])
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		refs[i] = ref
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := exec.MapWorkers(context.Background(), workers, n,
			func(_ context.Context, _, i int) (Result, error) {
				res, _, err := runCheckpointed(params[i], pauseSeeds[i])
				return res, err
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range refs {
			if !reflect.DeepEqual(refs[i], got[i]) {
				t.Fatalf("workers=%d case %d: restored run diverged", workers, i)
			}
		}
	}
}

// TestCheckpointRejectsUncheckpointable pins the unsupported-surface
// errors: timeline-file runs are rejected up front, and snapshots are
// only legal at tick boundaries of a started, unfinished run.
func TestCheckpointRejectsUncheckpointable(t *testing.T) {
	p := DefaultParams()
	p.Tasks = 50
	p.Nodes = 20

	bad := p
	bad.SampleEvery = 4
	bad.TimelinePath = t.TempDir() + "/timeline.csv"
	if _, err := StartRun(bad); err == nil {
		t.Fatal("StartRun accepted a timeline-file run")
	}
	if _, err := ResumeRun(bad, nil); err == nil {
		t.Fatal("ResumeRun accepted a timeline-file run")
	}

	run, err := StartRun(p)
	if err != nil {
		t.Fatal(err)
	}
	if !run.RunUntil(nil) {
		t.Fatal("nil pause stopped early")
	}
	if _, err := run.Snapshot(); err == nil {
		t.Fatal("Snapshot of a finished run succeeded")
	}
	if _, err := run.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}
