package dreamsim_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dreamsim"
)

// Golden-report gate for the committed example scenarios: each
// examples/scenarios/*.scn runs both reconfiguration methods at fixed
// parameters, and the rendered Table I + XML reports must match the
// checked-in fixture byte for byte. Any change to the scenario
// compiler, the RNG split order or the report layout that moves a
// single byte shows up as a fixture diff. Regenerate intentionally
// with:
//
//	DREAMSIM_UPDATE_GOLDEN=1 go test -run TestScenarioGoldenReports .

const updateGoldenEnv = "DREAMSIM_UPDATE_GOLDEN"

// exampleScenarioDir is the committed example-spec directory; the
// golden and determinism suites iterate every .scn file in it.
const exampleScenarioDir = "examples/scenarios"

// loadExampleScenarios returns every committed example scenario,
// sorted by name.
func loadExampleScenarios(t *testing.T) []dreamsim.NamedScenario {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(exampleScenarioDir, "*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("found %d example scenarios in %s, want at least 3", len(paths), exampleScenarioDir)
	}
	var set []dreamsim.NamedScenario
	for _, path := range paths {
		scn, err := dreamsim.LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		set = append(set, scn)
	}
	return set
}

// goldenParams is the fixed configuration the golden reports pin.
func goldenParams() dreamsim.Params {
	p := dreamsim.DefaultParams()
	p.Nodes = 100
	p.Tasks = 0 // each scenario's own task count governs
	return p
}

func renderGolden(t *testing.T, cell dreamsim.ScenarioCell) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, half := range []struct {
		label string
		res   dreamsim.Result
	}{{"full", cell.Full}, {"partial", cell.Partial}} {
		fmt.Fprintf(&b, "=== %s ===\n", half.label)
		b.WriteString(half.res.TableI())
		if err := half.res.WriteXML(&b); err != nil {
			t.Fatal(err)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func TestScenarioGoldenReports(t *testing.T) {
	set := loadExampleScenarios(t)
	cells, err := dreamsim.RunScenarioSet(goldenParams(), set, nil)
	if err != nil {
		t.Fatal(err)
	}
	update := os.Getenv(updateGoldenEnv) != ""
	for _, cell := range cells {
		got := renderGolden(t, cell)
		path := filepath.Join("testdata", "scenarios", cell.Name+".golden")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("updated %s (%d bytes)", path, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden fixture for %q (run with %s=1 to create): %v",
				cell.Name, updateGoldenEnv, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("scenario %q report diverged from %s (%d vs %d bytes); "+
				"rerun with %s=1 if the change is intended\n%s",
				cell.Name, path, len(got), len(want), updateGoldenEnv, firstDiff(got, want))
		}
	}
}

// firstDiff renders the first differing region of two blobs for the
// failure message.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) string {
		hi := i + 80
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return ""
		}
		return strings.ReplaceAll(string(b[lo:hi]), "\n", "\\n")
	}
	return fmt.Sprintf("first diff at byte %d:\n  got  ...%s...\n  want ...%s...", i, clip(got), clip(want))
}

// TestScenarioGoldenFaultsFired guards against the fault-storm golden
// passing vacuously: its report must actually record node crashes.
func TestScenarioGoldenFaultsFired(t *testing.T) {
	scn, err := dreamsim.LoadScenario(filepath.Join(exampleScenarioDir, "fault-storm.scn"))
	if err != nil {
		t.Fatal(err)
	}
	p := goldenParams()
	p.ScenarioText = scn.Text
	res, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes == 0 {
		t.Error("fault-storm scenario recorded no node crashes")
	}
	if res.NodeRecoveries == 0 {
		t.Error("fault-storm scenario recorded no recoveries")
	}
}
