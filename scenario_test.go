package dreamsim

import (
	"bytes"
	"reflect"
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

// multiClassScenario is the inline reference spec the public scenario
// tests share: two classes, bursty arrivals, a diurnal timeline and a
// load spike.
const multiClassScenario = `dreamsim-scenario v1
name test-diurnal
tasks 1200
interval 50

class batch
  fraction 0.6
  arrival gamma 2
  reqtime 1000 80000 lognormal
  area 200 1500
end

class interactive
  fraction 0.4
  arrival weibull 0.6
  reqtime 100 5000 uniform
end

timeline
  0 0.5
  4000 1.5
  9000 0.5
end

event spike 2000 2600 3
`

// TestScenarioEquivalenceGate is the legacy-surface contract: a
// scenario mechanically lifted from the flag parameters
// (ScenarioFromSpec) must produce a Result deeply equal — and an XML
// report byte-identical — to running the flags directly. It covers
// the paper-default surface plus the Poisson/lognormal/popularity
// variants the lift must round-trip.
func TestScenarioEquivalenceGate(t *testing.T) {
	variants := map[string]func(*Params){
		"paper-defaults": func(p *Params) {},
		"poisson":        func(p *Params) { p.PoissonArrivals = true },
		"lognormal-zipf": func(p *Params) {
			p.TaskTimeDistribution = "lognormal"
			p.ConfigPopularity = 0.8
		},
		"streamed": func(p *Params) { p.Stream = true },
	}
	for name, tweak := range variants {
		p := DefaultParams()
		p.Nodes = 60
		p.Tasks = 1200
		tweak(&p)

		ref, err := Run(p)
		if err != nil {
			t.Fatalf("%s: flag run: %v", name, err)
		}

		spec := p.spec()
		q := p
		q.ScenarioText = workload.FormatScenario(workload.ScenarioFromSpec(&spec))
		got, err := Run(q)
		if err != nil {
			t.Fatalf("%s: scenario run: %v", name, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%s: scenario result diverged from flag run\nflags    %+v\nscenario %+v", name, ref, got)
		}
		var rx, gx bytes.Buffer
		if err := ref.WriteXML(&rx); err != nil {
			t.Fatal(err)
		}
		if err := got.WriteXML(&gx); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rx.Bytes(), gx.Bytes()) {
			t.Errorf("%s: scenario XML not byte-identical to the flag run", name)
		}
	}
}

// TestScenarioStreamEquivalence extends the streamed-vs-materialized
// contract to multi-class scenario runs: Stream on and off must agree
// deeply and byte-for-byte, in both reconfiguration scenarios.
func TestScenarioStreamEquivalence(t *testing.T) {
	for _, partial := range []bool{false, true} {
		p := DefaultParams()
		p.Nodes = 60
		p.Tasks = 0 // scenario sets it
		p.PartialReconfig = partial
		p.ScenarioText = multiClassScenario

		plain, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		p.Stream = true
		streamed, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, streamed) {
			t.Errorf("partial=%v: streamed scenario run diverged", partial)
		}
		var px, sx bytes.Buffer
		if err := plain.WriteXML(&px); err != nil {
			t.Fatal(err)
		}
		if err := streamed.WriteXML(&sx); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(px.Bytes(), sx.Bytes()) {
			t.Errorf("partial=%v: streamed scenario XML diverged", partial)
		}
	}
}

// TestScenarioClassAccounting checks the per-class rows are a true
// partition of the run totals: every generated/completed/discarded/
// lost task lands in exactly one class row.
func TestScenarioClassAccounting(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 60
	p.ScenarioText = multiClassScenario

	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 2 {
		t.Fatalf("got %d class rows, want 2: %+v", len(res.Classes), res.Classes)
	}
	if res.Classes[0].Name != "batch" || res.Classes[1].Name != "interactive" {
		t.Fatalf("class names %q/%q, want batch/interactive", res.Classes[0].Name, res.Classes[1].Name)
	}
	var gen, done, disc, lost int64
	for _, c := range res.Classes {
		gen += c.Generated
		done += c.Completed
		disc += c.Discarded
		lost += c.Lost
		if c.Generated == 0 {
			t.Errorf("class %q generated no tasks", c.Name)
		}
	}
	if gen != res.TotalTasks {
		t.Errorf("class Generated sums to %d, want TotalTasks %d", gen, res.TotalTasks)
	}
	if done != res.CompletedTasks {
		t.Errorf("class Completed sums to %d, want CompletedTasks %d", done, res.CompletedTasks)
	}
	if disc != res.TotalDiscardedTasks {
		t.Errorf("class Discarded sums to %d, want TotalDiscardedTasks %d", disc, res.TotalDiscardedTasks)
	}
	if lost != res.TasksLost {
		t.Errorf("class Lost sums to %d, want TasksLost %d", lost, res.TasksLost)
	}
}

// TestScenarioClassIsolation is the substream contract: adding a third
// class must not perturb the existing classes' per-class outcomes'
// dependence on their own draws. The absolute counts change (the new
// class competes for tasks and fabric), but the per-class substreams
// are keyed by name, which we verify directly at the workload layer:
// the first N draws of class "batch" are identical whether or not
// "extra" exists.
func TestScenarioClassIsolation(t *testing.T) {
	base := `dreamsim-scenario v1
tasks 600
interval 40
class batch
  fraction 0.5
  arrival gamma 1.5
  reqtime 500 20000 uniform
end
class interactive
  fraction 0.5
  arrival poisson
  reqtime 100 2000 uniform
end
`
	extended := base + `class extra
  fraction 0.25
  arrival weibull 0.8
end
`
	configs := make([]*model.Config, 20)
	for i := range configs {
		configs[i] = &model.Config{No: i, ReqArea: model.Area(200 + 90*i), ConfigTime: 15}
	}
	collect := func(text string) map[string][][3]int64 {
		p := DefaultParams()
		p.Nodes = 40
		p.Tasks = 0
		spec := p.spec()
		scn, err := workload.ParseScenario(text)
		if err != nil {
			t.Fatal(err)
		}
		scn.ApplyDefaults(&spec)
		src, err := workload.NewScenarioSource(rng.New(7), scn, &spec, configs)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := src.(workload.ClassedSource)
		if !ok {
			t.Fatalf("scenario compiled to %T, want a ClassedSource", src)
		}
		out := map[string][][3]int64{}
		names := s.ClassNames()
		for {
			task, ok := s.Next()
			if !ok {
				break
			}
			name := names[task.Class]
			out[name] = append(out[name], [3]int64{int64(task.NeededArea), task.RequiredTime, int64(task.PrefConfig)})
		}
		return out
	}
	before := collect(base)
	after := collect(extended)
	for _, class := range []string{"batch", "interactive"} {
		b, a := before[class], after[class]
		n := len(b)
		if len(a) < n {
			n = len(a)
		}
		if n == 0 {
			t.Fatalf("class %q emitted no tasks in one of the runs", class)
		}
		for i := 0; i < n; i++ {
			if b[i] != a[i] {
				t.Fatalf("class %q draw %d changed when class \"extra\" was added: %v -> %v", class, i, b[i], a[i])
			}
		}
	}
}
