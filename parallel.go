package dreamsim

// The parallel experiment engine. A single simulation's event loop is
// sequential (one clock mutating one resource population; the
// intra-run workers of Params.IntraParallel parallelize work WITHIN a
// tick without reordering it — see DESIGN.md §14), but every
// experiment helper above it — the full/partial halves of Compare,
// the cells of RunMatrix, the seeds of RunReplicated and
// ComparePaired — is a set of completely independent runs: each unit
// derives all of its randomness from its own Params (seed, node
// count, task count, scenario), never from shared state. Fanning the
// units across a worker pool therefore yields byte-identical results
// to a sequential sweep, regardless of worker count and OS
// scheduling; only wall-clock time changes. Params.Parallelism
// selects the worker count; internal/exec supplies the pool.

import (
	"runtime"

	"dreamsim/internal/core"
)

// DefaultParallelism returns the worker count the CLI tools default
// to: one worker per CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// maxAutoIntraParallel caps the automatic intra-run worker count:
// placement-scan and speculation fan-outs flatten out well before the
// core counts of large machines, and oversubscribing them only adds
// synchronization cost to every tick.
const maxAutoIntraParallel = 8

// EffectiveIntraParallel resolves a Params.IntraParallel value: 0
// means automatic — min(GOMAXPROCS, 8) — anything else is taken
// as-is (1 = the exact sequential code path).
func EffectiveIntraParallel(v int) int {
	if v != 0 {
		return v
	}
	n := runtime.GOMAXPROCS(0)
	if n > maxAutoIntraParallel {
		n = maxAutoIntraParallel
	}
	if n < 1 {
		n = 1
	}
	return n
}

// workersFor normalises a Params.Parallelism value (0 and 1 both mean
// sequential) and caps it at the number of available units.
func workersFor(parallelism, units int) int {
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > units {
		parallelism = units
	}
	return parallelism
}

// scratchPool hands each experiment worker a reusable core run
// context, built on first use. exec.DoWorkers guarantees a worker
// index is never shared by two concurrent units, so slot w needs no
// locking; the context amortises per-run state (event pool, dense
// bookkeeping slices) over the worker's whole unit stream without
// changing any result.
type scratchPool []*core.RunContext

func newScratchPool(workers int) scratchPool { return make(scratchPool, workers) }

func (s scratchPool) get(w int) *core.RunContext {
	if s[w] == nil {
		s[w] = core.NewRunContext()
	}
	return s[w]
}
