package dreamsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dreamsim/internal/exec"
)

// Cell is one experiment point: both scenarios at one (nodes, tasks)
// coordinate, run over identical inputs.
type Cell struct {
	Nodes, Tasks  int
	Full, Partial Result
}

// Matrix is a full experiment sweep: every (nodes, tasks) coordinate
// the paper's figures draw from. Running the matrix once and
// extracting all nine figures from it avoids re-simulating shared
// coordinates (Figs. 6a/7a/8a share the 100-node runs; 6b/7b/8b/9a/
// 9b/10 share the 200-node runs).
type Matrix struct {
	NodeCounts []int
	TaskCounts []int
	Cells      []Cell // row-major: node count outer, task count inner

	// cellIdx maps (nodes, tasks) to the cell's index; built by
	// RunMatrix and LoadMatrix so CellAt answers in O(1) instead of
	// scanning the grid once per figure point.
	cellIdx map[[2]int]int
}

// validateGrid rejects coordinate grids that would produce duplicate
// (nodes, tasks) cells: every coordinate must map to exactly one cell
// or CellAt (and every figure drawn through it) becomes ambiguous.
func validateGrid(nodeCounts, taskCounts []int) error {
	seenN := make(map[int]bool, len(nodeCounts))
	for _, n := range nodeCounts {
		if seenN[n] {
			return fmt.Errorf("dreamsim: duplicate node count %d in matrix grid", n)
		}
		seenN[n] = true
	}
	seenT := make(map[int]bool, len(taskCounts))
	for _, t := range taskCounts {
		if seenT[t] {
			return fmt.Errorf("dreamsim: duplicate task count %d in matrix grid", t)
		}
		seenT[t] = true
	}
	return nil
}

// RunMatrix sweeps both scenarios over the cross product of node and
// task counts (nil grids default to the paper's {100, 200} ×
// PaperTaskCounts). Every (cell, scenario) pair is an independent
// simulation unit, so base.Parallelism of them run concurrently; the
// assembled matrix is byte-identical to a sequential sweep. onCell,
// when non-nil, observes each finished cell (progress reporting);
// with Parallelism > 1 cells may finish — and be observed — out of
// grid order, and onCell must be safe to call from the run's worker
// goroutines (calls themselves are serialised).
func RunMatrix(base Params, nodeCounts, taskCounts []int, onCell func(Cell)) (*Matrix, error) {
	if nodeCounts == nil {
		nodeCounts = []int{100, 200}
	}
	if taskCounts == nil {
		taskCounts = PaperTaskCounts
	}
	if err := validateGrid(nodeCounts, taskCounts); err != nil {
		return nil, err
	}
	m := &Matrix{NodeCounts: nodeCounts, TaskCounts: taskCounts}
	m.Cells = make([]Cell, 0, len(nodeCounts)*len(taskCounts))
	for _, nodes := range nodeCounts {
		for _, tasks := range taskCounts {
			m.Cells = append(m.Cells, Cell{Nodes: nodes, Tasks: tasks})
		}
	}

	// Two units per cell: the full and partial halves fan out
	// independently (unit order full-then-partial per cell, so one
	// worker reproduces the historical sequential order exactly).
	pending := make([]atomic.Int32, len(m.Cells))
	for i := range pending {
		pending[i].Store(2)
	}
	var cellMu sync.Mutex
	workers := workersFor(base.Parallelism, 2*len(m.Cells))
	scratch := newScratchPool(workers)
	err := exec.DoWorkers(context.Background(), workers, 2*len(m.Cells),
		func(_ context.Context, w, u int) error {
			cell := &m.Cells[u/2]
			p := base
			p.Nodes = cell.Nodes
			p.Tasks = cell.Tasks
			p.PartialReconfig = u%2 == 1
			res, err := runScratch(p, scratch.get(w))
			if err != nil {
				return fmt.Errorf("dreamsim: matrix cell %d nodes/%d tasks: %w", cell.Nodes, cell.Tasks, err)
			}
			if p.PartialReconfig {
				//lint:sharedstate units 2k and 2k+1 share cell u/2 but write disjoint fields (Partial vs Full), and readers are ordered after both writes by the pending[u/2] atomic decrement
				cell.Partial = res
			} else {
				//lint:sharedstate units 2k and 2k+1 share cell u/2 but write disjoint fields (Partial vs Full), and readers are ordered after both writes by the pending[u/2] atomic decrement
				cell.Full = res
			}
			// The half that completes the cell reports it; the atomic
			// decrement orders it after the sibling's result write.
			if pending[u/2].Add(-1) == 0 && onCell != nil {
				cellMu.Lock()
				onCell(*cell)
				cellMu.Unlock()
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	m.buildIndex()
	return m, nil
}

// buildIndex (re)builds the coordinate map. The first cell at a
// coordinate wins, matching the historical linear-scan behaviour for
// hand-assembled matrices.
func (m *Matrix) buildIndex() {
	m.cellIdx = make(map[[2]int]int, len(m.Cells))
	for i := range m.Cells {
		key := [2]int{m.Cells[i].Nodes, m.Cells[i].Tasks}
		if _, dup := m.cellIdx[key]; !dup {
			m.cellIdx[key] = i
		}
	}
}

// CellAt returns the cell at a coordinate, or nil if absent. Matrices
// built by RunMatrix or LoadMatrix answer from the coordinate map;
// hand-assembled ones fall back to a scan.
func (m *Matrix) CellAt(nodes, tasks int) *Cell {
	if m.cellIdx != nil {
		if i, ok := m.cellIdx[[2]int{nodes, tasks}]; ok {
			return &m.Cells[i]
		}
		return nil
	}
	for i := range m.Cells {
		if m.Cells[i].Nodes == nodes && m.Cells[i].Tasks == tasks {
			return &m.Cells[i]
		}
	}
	return nil
}

// Figure extracts one paper figure from the matrix. Every task count
// of the matrix must be present for the figure's node count.
func (m *Matrix) Figure(id FigureID) (Figure, error) {
	spec, ok := figureRegistry[id]
	if !ok {
		return Figure{}, fmt.Errorf("dreamsim: unknown figure %q", id)
	}
	fig := Figure{
		ID: id, Title: spec.title,
		XLabel: "total tasks generated", YLabel: spec.ylabel,
		Nodes: spec.nodes, TaskCounts: m.TaskCounts,
		PartialBelowExpected: spec.expectPartialBelow,
	}
	for _, tasks := range m.TaskCounts {
		cell := m.CellAt(spec.nodes, tasks)
		if cell == nil {
			return Figure{}, fmt.Errorf("dreamsim: matrix lacks cell %d nodes/%d tasks for figure %s",
				spec.nodes, tasks, id)
		}
		fig.Without = append(fig.Without, spec.metric(cell.Full))
		fig.With = append(fig.With, spec.metric(cell.Partial))
	}
	return fig, nil
}

// Figures extracts every paper figure the matrix covers (those whose
// node count is in the matrix's grid).
func (m *Matrix) Figures() ([]Figure, error) {
	var out []Figure
	for _, id := range FigureIDs() {
		spec := figureRegistry[id]
		found := false
		for _, n := range m.NodeCounts {
			if n == spec.nodes {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		fig, err := m.Figure(id)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
