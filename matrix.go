package dreamsim

import "fmt"

// Cell is one experiment point: both scenarios at one (nodes, tasks)
// coordinate, run over identical inputs.
type Cell struct {
	Nodes, Tasks  int
	Full, Partial Result
}

// Matrix is a full experiment sweep: every (nodes, tasks) coordinate
// the paper's figures draw from. Running the matrix once and
// extracting all nine figures from it avoids re-simulating shared
// coordinates (Figs. 6a/7a/8a share the 100-node runs; 6b/7b/8b/9a/
// 9b/10 share the 200-node runs).
type Matrix struct {
	NodeCounts []int
	TaskCounts []int
	Cells      []Cell // row-major: node count outer, task count inner
}

// RunMatrix sweeps both scenarios over the cross product of node and
// task counts (nil grids default to the paper's {100, 200} ×
// PaperTaskCounts). onCell, when non-nil, observes each finished cell
// (progress reporting).
func RunMatrix(base Params, nodeCounts, taskCounts []int, onCell func(Cell)) (*Matrix, error) {
	if nodeCounts == nil {
		nodeCounts = []int{100, 200}
	}
	if taskCounts == nil {
		taskCounts = PaperTaskCounts
	}
	m := &Matrix{NodeCounts: nodeCounts, TaskCounts: taskCounts}
	for _, nodes := range nodeCounts {
		for _, tasks := range taskCounts {
			p := base
			p.Nodes = nodes
			p.Tasks = tasks
			full, partial, err := Compare(p)
			if err != nil {
				return nil, fmt.Errorf("dreamsim: matrix cell %d nodes/%d tasks: %w", nodes, tasks, err)
			}
			cell := Cell{Nodes: nodes, Tasks: tasks, Full: full, Partial: partial}
			m.Cells = append(m.Cells, cell)
			if onCell != nil {
				onCell(cell)
			}
		}
	}
	return m, nil
}

// CellAt returns the cell at a coordinate, or nil if absent.
func (m *Matrix) CellAt(nodes, tasks int) *Cell {
	for i := range m.Cells {
		if m.Cells[i].Nodes == nodes && m.Cells[i].Tasks == tasks {
			return &m.Cells[i]
		}
	}
	return nil
}

// Figure extracts one paper figure from the matrix. Every task count
// of the matrix must be present for the figure's node count.
func (m *Matrix) Figure(id FigureID) (Figure, error) {
	spec, ok := figureRegistry[id]
	if !ok {
		return Figure{}, fmt.Errorf("dreamsim: unknown figure %q", id)
	}
	fig := Figure{
		ID: id, Title: spec.title,
		XLabel: "total tasks generated", YLabel: spec.ylabel,
		Nodes: spec.nodes, TaskCounts: m.TaskCounts,
		PartialBelowExpected: spec.expectPartialBelow,
	}
	for _, tasks := range m.TaskCounts {
		cell := m.CellAt(spec.nodes, tasks)
		if cell == nil {
			return Figure{}, fmt.Errorf("dreamsim: matrix lacks cell %d nodes/%d tasks for figure %s",
				spec.nodes, tasks, id)
		}
		fig.Without = append(fig.Without, spec.metric(cell.Full))
		fig.With = append(fig.With, spec.metric(cell.Partial))
	}
	return fig, nil
}

// Figures extracts every paper figure the matrix covers (those whose
// node count is in the matrix's grid).
func (m *Matrix) Figures() ([]Figure, error) {
	var out []Figure
	for _, id := range FigureIDs() {
		spec := figureRegistry[id]
		found := false
		for _, n := range m.NodeCounts {
			if n == spec.nodes {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		fig, err := m.Figure(id)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
