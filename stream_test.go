package dreamsim_test

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"dreamsim"
	"dreamsim/internal/monitor"
)

// TestStreamRunEquivalence is the public half of the streaming
// engine's determinism contract: with identical seeds, Run with
// Stream on and off must produce deeply equal Results and
// byte-identical XML reports at every pre-existing scale and in both
// reconfiguration scenarios.
func TestStreamRunEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 5} {
		for _, partial := range []bool{false, true} {
			for _, tasks := range []int{500, 1500} {
				p := dreamsim.DefaultParams()
				p.Nodes = 60
				p.Tasks = tasks
				p.PartialReconfig = partial
				p.Seed = seed

				plain, err := dreamsim.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				p.Stream = true
				streamed, err := dreamsim.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(plain, streamed) {
					t.Errorf("seed=%d partial=%v tasks=%d: streamed result diverged\nplain    %+v\nstreamed %+v",
						seed, partial, tasks, plain, streamed)
				}
				var px, sx bytes.Buffer
				if err := plain.WriteXML(&px); err != nil {
					t.Fatal(err)
				}
				if err := streamed.WriteXML(&sx); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(px.Bytes(), sx.Bytes()) {
					t.Errorf("seed=%d partial=%v tasks=%d: XML reports not byte-identical",
						seed, partial, tasks)
				}
			}
		}
	}
}

// TestStreamCompareWorkerEquivalence covers the fan-out surface:
// Compare (both scenarios over identical inputs) must return the same
// pair streamed or not, sequentially or with concurrent workers.
func TestStreamCompareWorkerEquivalence(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 800
	fullRef, partRef, err := dreamsim.Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		sp := p
		sp.Stream = true
		sp.Parallelism = workers
		full, part, err := dreamsim.Compare(sp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fullRef, full) || !reflect.DeepEqual(partRef, part) {
			t.Errorf("workers=%d: streamed Compare diverged from the sequential plain reference", workers)
		}
	}
}

// TestWindowedAggregatesMatchFullHistory runs the same simulation
// twice — once retaining the full monitoring series, once with
// rolling-window aggregation — and checks every window row equals the
// reduction of the corresponding full-history chunk.
func TestWindowedAggregatesMatchFullHistory(t *testing.T) {
	const window = 32
	p := dreamsim.DefaultParams()
	p.Nodes = 30
	p.Tasks = 400
	p.PartialReconfig = true
	p.SampleEvery = 1

	plain, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Timeline) == 0 {
		t.Fatal("plain run recorded no samples")
	}

	p.WindowSamples = window
	windowed, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed.Timeline) != 0 {
		t.Fatal("windowed run retained raw samples")
	}
	wantRows := (len(plain.Timeline) + window - 1) / window
	if windowed.WindowsTotal != wantRows || len(windowed.Windows) != wantRows {
		t.Fatalf("windowed run closed %d rows (retained %d), want %d for %d samples",
			windowed.WindowsTotal, len(windowed.Windows), wantRows, len(plain.Timeline))
	}

	for i := 0; i < wantRows; i++ {
		lo := i * window
		hi := lo + window
		if hi > len(plain.Timeline) {
			hi = len(plain.Timeline)
		}
		chunk := make([]monitor.Sample, 0, hi-lo)
		for _, pt := range plain.Timeline[lo:hi] {
			chunk = append(chunk, monitor.Sample{
				Time:        pt.Time,
				Running:     pt.RunningTasks,
				Suspended:   pt.Suspended,
				WastedArea:  pt.WastedArea,
				Utilization: pt.Utilization,
			})
		}
		want := monitor.Reduce(chunk)
		got := windowed.Windows[i]
		if got.Start != want.Start || got.End != want.End || got.Samples != want.Samples ||
			got.Utilization != publicStat(want.Utilization) ||
			got.Running != publicStat(want.Running) ||
			got.Suspended != publicStat(want.Suspended) ||
			got.WastedArea != publicStat(want.WastedArea) {
			t.Errorf("window %d: streamed aggregate %+v != full-history reduction %+v", i, got, want)
		}
	}
}

func publicStat(s monitor.WindowStat) dreamsim.WindowStat {
	return dreamsim.WindowStat{Min: s.Min, Max: s.Max, Mean: s.Mean, P99: s.P99}
}

// TestStreamedTimelineCSV exercises the incremental timeline writer
// end to end: a streamed run with TimelinePath must leave a CSV whose
// row count matches the run's closed windows.
func TestStreamedTimelineCSV(t *testing.T) {
	path := t.TempDir() + "/timeline.csv"
	p := dreamsim.DefaultParams()
	p.Nodes = 30
	p.Tasks = 300
	p.PartialReconfig = true
	p.SampleEvery = 1
	p.WindowSamples = 16
	p.Stream = true
	p.TimelinePath = path

	res, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines != res.WindowsTotal+1 { // header + one line per closed window
		t.Fatalf("timeline CSV has %d lines, want %d windows + header", lines, res.WindowsTotal)
	}
}
