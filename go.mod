module dreamsim

go 1.22
