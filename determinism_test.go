package dreamsim

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Cross-process determinism regression: the serialised result of a
// small sweep must be byte-identical across fresh processes and
// across parallelism levels. In-process repetition cannot catch
// nondeterminism seeded by Go's per-process map iteration hashing or
// by goroutine interleaving, so the test re-execs the test binary and
// compares the SaveMatrix JSON byte for byte.

const (
	detChildEnv = "DREAMSIM_DETERMINISM_CHILD"
	detOutEnv   = "DREAMSIM_DETERMINISM_OUT"
	detParEnv   = "DREAMSIM_DETERMINISM_PAR"
)

// TestDeterminismChild is the re-exec target: it runs the sweep and
// writes the serialised matrix where the parent asked. Outside a
// child process it is skipped.
func TestDeterminismChild(t *testing.T) {
	if os.Getenv(detChildEnv) != "1" {
		t.Skip("helper for TestCrossProcessByteIdenticalSweep")
	}
	par := 1
	if os.Getenv(detParEnv) == "4" {
		par = 4
	}
	p := DefaultParams()
	p.Seed = 424242
	p.Parallelism = par
	p.TaskTimeRange = [2]int64{50, 2000}
	m, err := RunMatrix(p, []int{6, 9}, []int{80, 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv(detOutEnv), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrossProcessByteIdenticalSweep(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	runs := []struct {
		label string
		par   string
	}{
		{"sequential", "1"},
		{"parallel", "4"},
		{"parallel-again", "4"},
	}
	var blobs [][]byte
	for i, run := range runs {
		out := filepath.Join(dir, fmt.Sprintf("run-%d.json", i))
		cmd := exec.Command(exe, "-test.run=^TestDeterminismChild$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			detChildEnv+"=1", detOutEnv+"="+out, detParEnv+"="+run.par)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child %s: %v\n%s", run.label, err, msg)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("child %s wrote no output: %v", run.label, err)
		}
		if len(blob) == 0 {
			t.Fatalf("child %s wrote an empty matrix", run.label)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Errorf("%s result JSON differs from %s (%d vs %d bytes)",
				runs[i].label, runs[0].label, len(blobs[i]), len(blobs[0]))
		}
	}
}
