package dreamsim

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Cross-process determinism regression: the serialised result of a
// small sweep must be byte-identical across fresh processes and
// across parallelism levels. In-process repetition cannot catch
// nondeterminism seeded by Go's per-process map iteration hashing or
// by goroutine interleaving, so the test re-execs the test binary and
// compares the SaveMatrix JSON byte for byte.

const (
	detChildEnv  = "DREAMSIM_DETERMINISM_CHILD"
	detOutEnv    = "DREAMSIM_DETERMINISM_OUT"
	detParEnv    = "DREAMSIM_DETERMINISM_PAR"
	detFaultsEnv = "DREAMSIM_DETERMINISM_FAULTS"
	detIntraEnv  = "DREAMSIM_DETERMINISM_INTRA"
)

// TestDeterminismChild is the re-exec target: it runs the sweep and
// writes the serialised matrix where the parent asked. Outside a
// child process it is skipped.
func TestDeterminismChild(t *testing.T) {
	if os.Getenv(detChildEnv) != "1" {
		t.Skip("helper for TestCrossProcessByteIdenticalSweep")
	}
	par := 1
	if n, err := strconv.Atoi(os.Getenv(detParEnv)); err == nil && n > 0 {
		par = n
	}
	p := DefaultParams()
	p.Seed = 424242
	p.Parallelism = par
	p.TaskTimeRange = [2]int64{50, 2000}
	if n, err := strconv.Atoi(os.Getenv(detIntraEnv)); err == nil && n > 0 {
		p.IntraParallel = n
	} else {
		// Pin the sequential path: the parent's comparisons must not
		// depend on the machine's GOMAXPROCS-derived auto value.
		p.IntraParallel = 1
	}
	if os.Getenv(detFaultsEnv) == "1" {
		p.FaultCrashRate = 0.003
		p.FaultMeanDowntime = 150
		p.FaultReconfigRate = 0.002
		p.FaultRetryBudget = 2
	}
	m, err := RunMatrix(p, []int{6, 9}, []int{80, 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv(detOutEnv), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// crossProcessBlobs re-execs TestDeterminismChild once per entry in
// pars and returns the serialised matrices, failing on any child
// error or empty output. Each pars entry is "P" (sweep workers) or
// "P/I" (sweep workers / intra-run workers).
func crossProcessBlobs(t *testing.T, faults bool, pars []string) [][]byte {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var blobs [][]byte
	for i, par := range pars {
		intra := ""
		if j := strings.IndexByte(par, '/'); j >= 0 {
			par, intra = par[:j], par[j+1:]
		}
		out := filepath.Join(dir, fmt.Sprintf("run-%d.json", i))
		cmd := exec.Command(exe, "-test.run=^TestDeterminismChild$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			detChildEnv+"=1", detOutEnv+"="+out, detParEnv+"="+par)
		if intra != "" {
			cmd.Env = append(cmd.Env, detIntraEnv+"="+intra)
		}
		if faults {
			cmd.Env = append(cmd.Env, detFaultsEnv+"=1")
		}
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child par=%s: %v\n%s", par, err, msg)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("child par=%s wrote no output: %v", par, err)
		}
		if len(blob) == 0 {
			t.Fatalf("child par=%s wrote an empty matrix", par)
		}
		blobs = append(blobs, blob)
	}
	return blobs
}

func TestCrossProcessByteIdenticalSweep(t *testing.T) {
	pars := []string{"1", "4", "4"}
	blobs := crossProcessBlobs(t, false, pars)
	for i := 1; i < len(blobs); i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Errorf("par=%s result JSON differs from par=%s (%d vs %d bytes)",
				pars[i], pars[0], len(blobs[i]), len(blobs[0]))
		}
	}
}

// TestCrossProcessByteIdenticalFaultSweep is the fault-enabled
// variant: random crash, recovery and reconfiguration-fault streams
// must serialise byte-identically across fresh processes at 1, 4 and
// 8 sweep workers. The NodeCrashes field is omitempty, so its
// presence in the blob proves the streams actually fired rather than
// the comparison passing vacuously.
func TestCrossProcessByteIdenticalFaultSweep(t *testing.T) {
	pars := []string{"1", "4", "8"}
	blobs := crossProcessBlobs(t, true, pars)
	for i := 1; i < len(blobs); i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Errorf("par=%s fault result JSON differs from par=%s (%d vs %d bytes)",
				pars[i], pars[0], len(blobs[i]), len(blobs[0]))
		}
	}
	if !bytes.Contains(blobs[0], []byte("NodeCrashes")) {
		t.Error("fault sweep recorded no crashes; the determinism check is vacuous")
	}
}

// TestCrossProcessByteIdenticalIntraParallel is the intra-run leg of
// the contract: the same sweep serialised from fresh processes at
// IntraParallel 1, 4 and 8 — sharded scans plus batched same-tick
// dispatch against the exact sequential code path — must agree byte
// for byte. Run both with and without fault streams, whose mid-tick
// state transitions are what invalidates speculated decisions.
func TestCrossProcessByteIdenticalIntraParallel(t *testing.T) {
	for _, faults := range []bool{false, true} {
		pars := []string{"1/1", "1/4", "1/8"}
		blobs := crossProcessBlobs(t, faults, pars)
		for i := 1; i < len(blobs); i++ {
			if !bytes.Equal(blobs[0], blobs[i]) {
				t.Errorf("faults=%v: intra=%s result JSON differs from intra=%s (%d vs %d bytes)",
					faults, pars[i], pars[0], len(blobs[i]), len(blobs[0]))
			}
		}
	}
}
