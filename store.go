package dreamsim

import (
	"encoding/json"
	"fmt"
	"io"
)

// The experiment store persists sweep results as JSON so expensive
// matrices (the 100 000-task cells take minutes) can be archived,
// re-plotted and diffed without re-simulation.

// storedMatrix is the serialised form; Result's unexported render
// state is rebuilt from the public fields on load, so stored results
// support everything except re-emitting the original XML report.
type storedMatrix struct {
	Version    int    `json:"version"`
	BaseSeed   uint64 `json:"base_seed"`
	NodeCounts []int  `json:"node_counts"`
	TaskCounts []int  `json:"task_counts"`
	Cells      []Cell `json:"cells"`
}

// storeVersion guards the on-disk format.
const storeVersion = 1

// SaveMatrix serialises a sweep matrix as indented JSON.
func SaveMatrix(w io.Writer, m *Matrix) error {
	if m == nil || len(m.Cells) == 0 {
		return fmt.Errorf("dreamsim: refusing to save an empty matrix")
	}
	sm := storedMatrix{
		Version:    storeVersion,
		NodeCounts: m.NodeCounts,
		TaskCounts: m.TaskCounts,
		Cells:      m.Cells,
	}
	if len(m.Cells) > 0 {
		sm.BaseSeed = m.Cells[0].Full.Seed
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sm)
}

// LoadMatrix reads a matrix previously written by SaveMatrix.
func LoadMatrix(r io.Reader) (*Matrix, error) {
	var sm storedMatrix
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("dreamsim: parsing matrix JSON: %w", err)
	}
	if sm.Version != storeVersion {
		return nil, fmt.Errorf("dreamsim: matrix store version %d, want %d", sm.Version, storeVersion)
	}
	if len(sm.Cells) == 0 {
		return nil, fmt.Errorf("dreamsim: stored matrix has no cells")
	}
	m := &Matrix{
		NodeCounts: sm.NodeCounts,
		TaskCounts: sm.TaskCounts,
		Cells:      sm.Cells,
	}
	m.buildIndex()
	return m, nil
}

// DiffMatrices compares the same metric across two stored sweeps
// (e.g. two seeds, or two code versions) and returns, per shared
// cell, the relative change of the chosen metric in the partial
// scenario: (b-a)/a. Cells present in only one matrix are skipped.
func DiffMatrices(a, b *Matrix, metric func(Result) float64) map[string]float64 {
	out := map[string]float64{}
	for _, ca := range a.Cells {
		cb := b.CellAt(ca.Nodes, ca.Tasks)
		if cb == nil {
			continue
		}
		va := metric(ca.Partial)
		vb := metric(cb.Partial)
		key := fmt.Sprintf("%dn/%dt", ca.Nodes, ca.Tasks)
		if va == 0 {
			if vb == 0 {
				out[key] = 0
			} else {
				out[key] = 1
			}
			continue
		}
		out[key] = (vb - va) / va
	}
	return out
}
