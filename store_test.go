package dreamsim_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dreamsim"
)

func smallMatrix(t *testing.T, seed uint64) *dreamsim.Matrix {
	t.Helper()
	base := dreamsim.DefaultParams()
	base.Seed = seed
	m, err := dreamsim.RunMatrix(base, []int{30}, []int{200, 400}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixSaveLoadRoundTrip(t *testing.T) {
	m := smallMatrix(t, 5)
	var buf bytes.Buffer
	if err := dreamsim.SaveMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"cells\"") {
		t.Fatal("JSON shape wrong")
	}
	got, err := dreamsim.LoadMatrix(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(m.Cells) {
		t.Fatalf("cells lost: %d != %d", len(got.Cells), len(m.Cells))
	}
	for i := range m.Cells {
		a, b := m.Cells[i], got.Cells[i]
		if a.Nodes != b.Nodes || a.Tasks != b.Tasks {
			t.Fatal("cell coordinates corrupted")
		}
		if a.Full.AvgWaitingTimePerTask != b.Full.AvgWaitingTimePerTask ||
			a.Partial.AvgWastedAreaPerTask != b.Partial.AvgWastedAreaPerTask {
			t.Fatal("cell metrics corrupted")
		}
	}
	// A loaded matrix still extracts figures for its node counts.
	fig, err := got.Figure(dreamsim.Fig6a)
	if err == nil {
		_ = fig // 30-node matrix has no 100-node figure; error expected
		t.Fatal("figure extracted for absent node count")
	}
}

func TestSaveMatrixRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := dreamsim.SaveMatrix(&buf, &dreamsim.Matrix{}); err == nil {
		t.Fatal("empty matrix saved")
	}
	if err := dreamsim.SaveMatrix(&buf, nil); err == nil {
		t.Fatal("nil matrix saved")
	}
}

func TestLoadMatrixRejects(t *testing.T) {
	if _, err := dreamsim.LoadMatrix(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := dreamsim.LoadMatrix(strings.NewReader(`{"version":99,"cells":[{}]}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := dreamsim.LoadMatrix(strings.NewReader(`{"version":1,"cells":[]}`)); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestDiffMatrices(t *testing.T) {
	a := smallMatrix(t, 5)
	b := smallMatrix(t, 99)
	diff := dreamsim.DiffMatrices(a, b, func(r dreamsim.Result) float64 {
		return r.AvgWaitingTimePerTask
	})
	if len(diff) != 2 {
		t.Fatalf("diff cells: %v", diff)
	}
	for key, rel := range diff {
		if math.IsNaN(rel) || math.IsInf(rel, 0) {
			t.Fatalf("diff %s = %v", key, rel)
		}
		// Different seeds must move the metric, but not by orders of
		// magnitude.
		if rel == 0 || math.Abs(rel) > 3 {
			t.Fatalf("diff %s = %v implausible", key, rel)
		}
	}
	// Identity diff is exactly zero.
	self := dreamsim.DiffMatrices(a, a, func(r dreamsim.Result) float64 {
		return r.AvgWaitingTimePerTask
	})
	for key, rel := range self {
		if rel != 0 {
			t.Fatalf("self diff %s = %v", key, rel)
		}
	}
}
