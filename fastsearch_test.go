package dreamsim_test

import (
	"reflect"
	"testing"

	"dreamsim"
)

// TestFastSearchEquivalence is the acceptance gate for the indexed
// resource-search path: across a grid of scales and both
// reconfiguration scenarios, every public Result — metrics, Table I
// counters (SchedulerSearch and HousekeepingSteps included), phase
// histogram — must be identical with FastSearch on and off.
func TestFastSearchEquivalence(t *testing.T) {
	for _, nodes := range []int{50, 100} {
		for _, tasks := range []int{500, 1000} {
			for _, partial := range []bool{false, true} {
				p := dreamsim.DefaultParams()
				p.Nodes = nodes
				p.Tasks = tasks
				p.PartialReconfig = partial

				lin, err := dreamsim.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				p.FastSearch = true
				// Cutoff 1 forces the index even on the 50-node
				// population, which sits below the adaptive default.
				p.FastSearchCutoff = 1
				fast, err := dreamsim.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lin, fast) {
					t.Errorf("nodes=%d tasks=%d partial=%v: fast-search result diverged\nlinear %+v\nfast   %+v",
						nodes, tasks, partial, lin, fast)
				}
			}
		}
	}
}

// TestFastSearchMatrixEquivalence covers the sweep-level surface: a
// full matrix run with FastSearch produces the same cells as linear.
func TestFastSearchMatrixEquivalence(t *testing.T) {
	base := dreamsim.DefaultParams()
	lin, err := dreamsim.RunMatrix(base, []int{20, 40}, []int{100, 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base.FastSearch = true
	base.FastSearchCutoff = 1 // force the index below the adaptive default
	fast, err := dreamsim.RunMatrix(base, []int{20, 40}, []int{100, 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lin.Cells {
		if !reflect.DeepEqual(lin.Cells[i].Full, fast.Cells[i].Full) ||
			!reflect.DeepEqual(lin.Cells[i].Partial, fast.Cells[i].Partial) {
			t.Errorf("cell %d diverged between linear and fast search", i)
		}
	}
}
