package dreamsim_test

import (
	"bytes"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"dreamsim"
)

// matrixBytes runs a small sweep at the given parallelism and returns
// its serialised form — the byte-level identity witness.
func matrixBytes(t *testing.T, parallel int) []byte {
	t.Helper()
	p := dreamsim.DefaultParams()
	p.Parallelism = parallel
	m, err := dreamsim.RunMatrix(p, []int{20, 40}, []int{100, 200, 400}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dreamsim.SaveMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMatrixParallelDeterminism proves the tentpole guarantee: the
// matrix a parallel sweep assembles is byte-identical to the
// sequential one, for every worker count.
func TestMatrixParallelDeterminism(t *testing.T) {
	want := matrixBytes(t, 1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		if got := matrixBytes(t, workers); !bytes.Equal(got, want) {
			t.Errorf("parallel=%d sweep differs from sequential (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestCompareParallelMatchesSequential checks the scenario halves of
// Compare produce identical results run concurrently or in sequence.
func TestCompareParallelMatchesSequential(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 500
	fullSeq, partSeq, err := dreamsim.Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 2
	fullPar, partPar, err := dreamsim.Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullSeq, fullPar) || !reflect.DeepEqual(partSeq, partPar) {
		t.Error("parallel Compare differs from sequential")
	}
}

// TestRunReplicatedParallelDeterminism checks seed fan-out statistics
// are independent of the worker count.
func TestRunReplicatedParallelDeterminism(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 300
	seeds := dreamsim.Seeds(7, 5)
	seq, err := dreamsim.RunReplicated(p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 4
	par, err := dreamsim.RunReplicated(p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("metric count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("metric %s differs across worker counts: %+v vs %+v",
				seq[i].Name, seq[i], par[i])
		}
	}
}

// TestRunMatrixObservesEveryCell checks onCell fires exactly once per
// cell under parallel execution.
func TestRunMatrixObservesEveryCell(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Parallelism = 4
	var cells atomic.Int64
	m, err := dreamsim.RunMatrix(p, []int{20, 30}, []int{100, 200}, func(c dreamsim.Cell) {
		if c.Full.TotalTasks == 0 || c.Partial.TotalTasks == 0 {
			t.Errorf("cell %d/%d observed before both halves finished", c.Nodes, c.Tasks)
		}
		cells.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cells.Load(); got != int64(len(m.Cells)) {
		t.Errorf("onCell fired %d times for %d cells", got, len(m.Cells))
	}
}

// TestRunMatrixRejectsDuplicateCoordinates covers the grid validation
// that replaced silent duplicate cells.
func TestRunMatrixRejectsDuplicateCoordinates(t *testing.T) {
	p := dreamsim.DefaultParams()
	if _, err := dreamsim.RunMatrix(p, []int{20, 20}, []int{100}, nil); err == nil {
		t.Error("duplicate node count accepted")
	}
	if _, err := dreamsim.RunMatrix(p, []int{20}, []int{100, 100}, nil); err == nil {
		t.Error("duplicate task count accepted")
	}
}

// TestCellAtIndexedLookup checks the coordinate map agrees with the
// historical linear scan, including for absent coordinates.
func TestCellAtIndexedLookup(t *testing.T) {
	p := dreamsim.DefaultParams()
	m, err := dreamsim.RunMatrix(p, []int{20, 30}, []int{100, 200}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.NodeCounts {
		for _, tc := range m.TaskCounts {
			c := m.CellAt(n, tc)
			if c == nil || c.Nodes != n || c.Tasks != tc {
				t.Fatalf("CellAt(%d, %d) = %+v", n, tc, c)
			}
		}
	}
	if c := m.CellAt(999, 100); c != nil {
		t.Errorf("CellAt(999, 100) = %+v, want nil", c)
	}
}
