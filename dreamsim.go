// Package dreamsim is a from-scratch Go implementation of DReAMSim —
// the Dynamic Reconfigurable Autonomous Many-task Simulator of
// Nadeem, Ashraf, Ostadzadeh, Wong and Bertels, "Task Scheduling in
// Large-scale Distributed Systems Utilizing Partial Reconfigurable
// Processing Elements" (IPDPSW 2012).
//
// The simulator models a large-scale distributed system whose
// processing elements are reconfigurable (FPGA-like) nodes. Each node
// has a total fabric area; processor configurations occupy area and
// take time to load; application tasks prefer a configuration and run
// for a required time. Under full reconfiguration a node hosts one
// configuration and one task; under partial reconfiguration a node
// hosts as many configurations as its area allows and runs one task
// per resident configuration, rewriting idle regions at run time.
//
// Quick start:
//
//	p := dreamsim.DefaultParams()
//	p.Tasks = 5000
//	full, partial, err := dreamsim.Compare(p)
//	// full/partial carry every Table I metric of the paper.
//
// The Figure* helpers regenerate every figure of the paper's
// evaluation section; see EXPERIMENTS.md for the mapping.
package dreamsim

import (
	"context"
	"fmt"
	"io"
	"os"

	"dreamsim/internal/core"
	"dreamsim/internal/exec"
	"dreamsim/internal/fault"
	"dreamsim/internal/metrics"
	"dreamsim/internal/monitor"
	"dreamsim/internal/netmodel"
	"dreamsim/internal/report"
	"dreamsim/internal/sched"
	"dreamsim/internal/workload"
)

// Params configures a simulation run. DefaultParams returns the
// paper's Table II values; zero values elsewhere mean "feature off".
type Params struct {
	// Nodes is the node count (the paper evaluates 100 and 200).
	Nodes int
	// Configs is the size of the configurations list (paper: 50).
	Configs int
	// Tasks is the number of tasks to generate (paper: 1000–100000).
	Tasks int
	// NextTaskMaxInterval bounds the inter-arrival gap (paper: 50).
	NextTaskMaxInterval int64
	// PoissonArrivals switches the arrival process from the paper's
	// uniform gaps to exponential gaps with the same mean.
	PoissonArrivals bool
	// TaskTimeRange bounds t_required (paper: [100, 100000]).
	TaskTimeRange [2]int64
	// ConfigAreaRange bounds configuration ReqArea (paper: [200, 2000]).
	ConfigAreaRange [2]int64
	// ConfigTimeRange bounds configuration load time (paper: [10, 20]).
	ConfigTimeRange [2]int64
	// NodeAreaRange bounds node TotalArea (paper: [1000, 4000]).
	NodeAreaRange [2]int64
	// ClosestMatchPct is the share of tasks whose preferred
	// configuration is absent from the list (paper: 0.15).
	ClosestMatchPct float64
	// TaskTimeDistribution selects the t_required distribution:
	// "uniform" (paper, default), "lognormal" or "pareto" —
	// heavy-tailed fits common for recorded job runtimes.
	TaskTimeDistribution string
	// ConfigPopularity skews preferred-configuration draws: 0 =
	// uniform (paper), s > 0 = Zipf(s) popularity over the list.
	ConfigPopularity float64

	// PartialReconfig selects the reconfiguration method.
	PartialReconfig bool
	// Seed drives all randomness; equal seeds give identical inputs
	// across the two reconfiguration scenarios.
	Seed uint64

	// Placement selects the Allocation-phase criterion: "best-fit"
	// (paper, default), "first-fit", "worst-fit" or "random-fit".
	Placement string
	// LoadBalance enables the least-loaded tie-break (the load
	// balancing module).
	LoadBalance bool
	// DisableSuspension discards tasks instead of queueing them
	// (ablation).
	DisableSuspension bool
	// MaxSusRetries, when positive, discards tasks re-examined more
	// than this many times in the suspension queue.
	MaxSusRetries int64
	// DefragThreshold, when positive, blanks fully-idle partial nodes
	// holding at least this many idle regions, returning their fabric
	// to one contiguous pool (fragmentation-fighting ablation).
	DefragThreshold int

	// NetworkDelayRange bounds each node's communication delay
	// (t_comm); both zero disables network delays.
	NetworkDelayRange [2]int64
	// BitstreamBandwidth, when positive, adds BSize/bandwidth ticks
	// to every configuration load.
	BitstreamBandwidth int64
	// DataBandwidth, when positive, adds Data/bandwidth ticks to
	// every task's communication delay.
	DataBandwidth int64

	// TickStep forces the paper-literal tick-by-tick clock.
	TickStep bool

	// FaultCrashRate, when positive, injects random node crashes as a
	// Poisson process with this mean rate per timetick. Crashed nodes
	// drop their resident configurations, displace their running tasks
	// into a retry path and recover after an exponential downtime.
	FaultCrashRate float64
	// FaultMeanDowntime is the mean downtime (timeticks) of randomly
	// crashed nodes; required when FaultCrashRate > 0.
	FaultMeanDowntime float64
	// FaultReconfigRate, when positive, arms reconfiguration failures
	// as a Poisson process: an armed fault aborts the next bitstream
	// load, wasting its reconfiguration time and re-suspending the task.
	FaultReconfigRate float64
	// FaultScript is an explicit fault schedule, fired alongside any
	// random streams: comma-separated "crash@TICK:NODE",
	// "recover@TICK:NODE" and "cfail@TICK" events.
	FaultScript string
	// FaultRetryBudget bounds how many crash displacements one task
	// survives before being counted lost (0 = default 3).
	FaultRetryBudget int64
	// FaultBackoffBase is the first re-dispatch backoff in timeticks
	// (0 = default 16); it doubles per displacement up to
	// FaultBackoffCap (0 = default 4096).
	FaultBackoffBase int64
	FaultBackoffCap  int64

	// CapKinds enables the heterogeneity extension: capability labels
	// nodes may offer and configurations may require (the `caps` of
	// the paper's node tuple, Eq. 1). Empty reproduces the paper's
	// homogeneous population.
	CapKinds []string
	// NodeCapProb is the probability a node offers each capability.
	NodeCapProb float64
	// ConfigCapProb is the probability a configuration requires each
	// capability.
	ConfigCapProb float64

	// SampleEvery, when positive, records a monitoring sample every
	// N-th placement/completion; the series lands in
	// Result.Timeline/TimelineText.
	SampleEvery int

	// Stream enables the bounded-memory streaming engine: tasks are
	// drawn lazily from the generator (they always are) AND released
	// back to its free list the moment their lifecycle ends, so one
	// run's heap is O(nodes + live tasks + window) instead of growing
	// with the task count. Reports, metering and RNG streams are
	// byte-identical to a non-streamed run at every scale. With
	// SampleEvery also set, monitoring switches to the rolling-window
	// aggregator (WindowSamples windows) so the time series stays
	// bounded too.
	Stream bool
	// WindowSamples selects the rolling-window aggregation of
	// monitoring samples: every WindowSamples-th sample closes a
	// window, reduced to min/max/mean/p99 per metric
	// (Result.Windows, and TimelinePath when set). 0 keeps the full
	// series on plain runs and defaults to DefaultWindowSamples on
	// streamed or timeline-writing runs.
	WindowSamples int
	// TimelinePath, when non-empty (and SampleEvery > 0), streams the
	// closed window rows to this file as CSV while the run progresses
	// — the incremental timeline output; the file never requires the
	// series to be held in memory.
	TimelinePath string

	// Parallelism bounds how many independent simulation units the
	// experiment helpers (Compare, RunMatrix, RunFigure, RunReplicated,
	// ComparePaired) execute concurrently. 0 and 1 both mean
	// sequential; DefaultParallelism() uses every CPU. Results are
	// byte-identical at any value because each unit derives all of its
	// randomness from its own Params — parallelism only changes wall-
	// clock time. A single Run is unaffected.
	Parallelism int
	// FastSearch replaces the resource information manager's linear
	// placement searches with an area-ordered node index (O(log n)
	// instead of O(n) per search). Results and all Table I counters
	// are identical to the linear mode: the paper's SearchLength /
	// workload accounting is a model output, so the fast path charges
	// exactly the steps the metered linear walk would have charged.
	FastSearch bool
	// FastSearchCutoff is the node count at which FastSearch actually
	// builds the index. Below it the per-search win cannot pay for the
	// index's per-transition maintenance, so small populations keep
	// the (identically metered) linear scans. Zero picks a measured
	// default; 1 forces the index regardless of population size.
	// Ignored unless FastSearch is set.
	FastSearchCutoff int
	// IntraParallel bounds the worker count INSIDE one simulation run:
	// capability-sharded placement scans and batched same-tick dispatch
	// (DESIGN.md §14). Orthogonal to Parallelism, which fans out whole
	// runs. 0 picks min(GOMAXPROCS, 8) automatically; 1 forces the
	// exact sequential code path; values above 1 set the worker count
	// directly. Every result byte — reports, search/housekeeping
	// counters, RNG streams — is identical at any setting; only wall-
	// clock time changes, and only when same-tick arrivals or large
	// node populations give the workers something to split.
	IntraParallel int

	// ScenarioText, when non-empty, is a scenario specification in the
	// "dreamsim-scenario v1" format (see README): multiple traffic
	// classes, bursty gamma/weibull arrivals, a load-pattern timeline
	// and scheduled events (spikes, maintenance windows, fault storms).
	// The scenario's task count and interval override Tasks /
	// NextTaskMaxInterval when set; every other knob keeps its meaning.
	// Use LoadScenario to read one from a file. A scenario that merely
	// restates the flag surface produces byte-identical reports to the
	// equivalent flag run.
	ScenarioText string
}

// DefaultParams returns the paper's Table II parameter values with
// 200 nodes and 1000 tasks.
func DefaultParams() Params {
	return Params{
		Nodes:               200,
		Configs:             50,
		Tasks:               1000,
		NextTaskMaxInterval: 50,
		TaskTimeRange:       [2]int64{100, 100000},
		ConfigAreaRange:     [2]int64{200, 2000},
		ConfigTimeRange:     [2]int64{10, 20},
		NodeAreaRange:       [2]int64{1000, 4000},
		ClosestMatchPct:     0.15,
		PartialReconfig:     true,
		Seed:                1,
		Placement:           "best-fit",
	}
}

// spec converts the public parameters to the internal workload spec.
func (p Params) spec() workload.Spec {
	arrival := workload.ArrivalUniform
	if p.PoissonArrivals {
		arrival = workload.ArrivalPoisson
	}
	dist := workload.DistUniform
	switch p.TaskTimeDistribution {
	case "lognormal":
		dist = workload.DistLognormal
	case "pareto":
		dist = workload.DistPareto
	case "", "uniform":
	default:
		dist = workload.DistKind(-1) // rejected by Spec.Validate
	}
	return workload.Spec{
		Tasks:               p.Tasks,
		NextTaskMaxInterval: p.NextTaskMaxInterval,
		Arrival:             arrival,
		TaskReqTimeLow:      p.TaskTimeRange[0],
		TaskReqTimeHigh:     p.TaskTimeRange[1],
		ClosestMatchPct:     p.ClosestMatchPct,
		TaskTimeDist:        dist,
		ConfigPopularity:    p.ConfigPopularity,
		Configs:             p.Configs,
		ConfigAreaLow:       p.ConfigAreaRange[0],
		ConfigAreaHigh:      p.ConfigAreaRange[1],
		ConfigTimeLow:       p.ConfigTimeRange[0],
		ConfigTimeHigh:      p.ConfigTimeRange[1],
		Nodes:               p.Nodes,
		NodeAreaLow:         p.NodeAreaRange[0],
		NodeAreaHigh:        p.NodeAreaRange[1],
		CapKinds:            p.CapKinds,
		NodeCapProb:         p.NodeCapProb,
		ConfigCapProb:       p.ConfigCapProb,
	}
}

// placement parses the placement name.
func (p Params) placement() (sched.Placement, error) {
	switch p.Placement {
	case "", "best-fit":
		return sched.BestFit, nil
	case "first-fit":
		return sched.FirstFit, nil
	case "worst-fit":
		return sched.WorstFit, nil
	case "random-fit":
		return sched.RandomFit, nil
	default:
		return 0, fmt.Errorf("dreamsim: unknown placement %q", p.Placement)
	}
}

// coreParams lowers the public parameters onto the engine.
func (p Params) coreParams() (core.Params, error) {
	placement, err := p.placement()
	if err != nil {
		return core.Params{}, err
	}
	cp := core.Params{
		Spec:    p.spec(),
		Partial: p.PartialReconfig,
		Seed:    p.Seed,
		PolicyOptions: sched.Options{
			Placement:         placement,
			LoadBalance:       p.LoadBalance,
			DisableSuspension: p.DisableSuspension,
		},
		Net: netmodel.Model{
			DelayLow:           p.NetworkDelayRange[0],
			DelayHigh:          p.NetworkDelayRange[1],
			BitstreamBandwidth: p.BitstreamBandwidth,
			DataBandwidth:      p.DataBandwidth,
		},
		TickStep:         p.TickStep,
		FastSearch:       p.FastSearch,
		FastSearchCutoff: p.FastSearchCutoff,
		IntraParallel:    EffectiveIntraParallel(p.IntraParallel),
		Stream:           p.Stream,
		MaxSusRetries:    p.MaxSusRetries,
		DefragThreshold:  p.DefragThreshold,
	}
	script, err := fault.ParseScript(p.FaultScript)
	if err != nil {
		return core.Params{}, err
	}
	cp.Faults = fault.Plan{
		CrashRate:         p.FaultCrashRate,
		MeanDowntime:      p.FaultMeanDowntime,
		ReconfigFaultRate: p.FaultReconfigRate,
		Script:            script,
	}
	cp.Retry = fault.RetryPolicy{
		Budget:      p.FaultRetryBudget,
		BackoffBase: p.FaultBackoffBase,
		BackoffCap:  p.FaultBackoffCap,
	}
	if p.ScenarioText != "" {
		scn, serr := workload.ParseScenario(p.ScenarioText)
		if serr != nil {
			return core.Params{}, serr
		}
		if serr := scn.Validate(); serr != nil {
			return core.Params{}, serr
		}
		scn.ApplyDefaults(&cp.Spec)
		if cp.Spec.Tasks <= 0 {
			return core.Params{}, fmt.Errorf("dreamsim: scenario sets no task count and Params.Tasks is zero")
		}
		cp.Scenario = scn
	}
	return cp, cp.Validate()
}

// Result carries the outcome of one run: the paper's Table I metrics
// plus supporting detail. Field meanings follow Table I; times are in
// timeticks, areas in area units.
type Result struct {
	// Table I metrics.
	AvgWastedAreaPerTask      float64
	AvgRunningTimePerTask     float64
	AvgReconfigCountPerNode   float64
	AvgReconfigTimePerTask    float64
	AvgWaitingTimePerTask     float64
	AvgSchedulingStepsPerTask float64
	TotalDiscardedTasks       int64
	TotalSchedulerWorkload    uint64
	TotalUsedNodes            int64
	TotalSimulationTime       int64

	// Supporting detail.
	TotalTasks       int64
	CompletedTasks   int64
	Reconfigurations int64
	SusQueuePeak     int64
	DiscardRate      float64

	// Fault-injection outcomes; all zero unless the Fault* knobs were
	// set. The omitempty tags keep fault-free serialised results
	// byte-identical to builds without the fault subsystem.
	NodeCrashes        int64   `json:",omitempty"`
	NodeRecoveries     int64   `json:",omitempty"`
	TasksRetried       int64   `json:",omitempty"`
	TasksLost          int64   `json:",omitempty"`
	ReconfigFaults     int64   `json:",omitempty"`
	WastedConfigTicks  int64   `json:",omitempty"`
	AvgDowntimePerNode float64 `json:",omitempty"`

	// Phases counts placements and verdicts per scheduling phase.
	Phases map[string]int64
	// Scenario is "partial" or "full"; Policy names the scheduler.
	Scenario string
	Policy   string
	// Seed echoes the run's seed.
	Seed uint64
	// Timeline holds monitoring samples when Params.SampleEvery > 0
	// (plain mode; empty on windowed runs).
	Timeline []TimelinePoint
	// Windows holds the rolling-window aggregates when
	// Params.WindowSamples selected windowed monitoring. The slice is
	// bounded (the most recent rows); WindowsTotal counts every window
	// that closed, including any the bound evicted.
	Windows      []TimelineWindow
	WindowsTotal int

	// Classes is the per-traffic-class breakdown of a multi-class
	// scenario run (Params.ScenarioText with two or more classes); nil
	// otherwise, so single-class serialised results are unchanged.
	Classes []ClassStat `json:",omitempty"`

	rep          metrics.Report
	xml          report.Simulation
	classRows    []metrics.ClassStats
	timelineText string
}

// ClassStat is one traffic class's slice of a multi-class run.
type ClassStat struct {
	Name           string
	Generated      int64
	Completed      int64
	Discarded      int64 `json:",omitempty"`
	Lost           int64 `json:",omitempty"`
	AvgWaitingTime float64
	AvgRunningTime float64
}

// TimelinePoint is one monitoring sample of a run's time series.
type TimelinePoint struct {
	Time         int64
	RunningTasks int
	Suspended    int
	Utilization  float64
	WastedArea   int64
}

// WindowStat summarises one metric over one aggregation window
// (nearest-rank p99).
type WindowStat struct {
	Min, Max, Mean, P99 float64
}

// TimelineWindow is one closed rolling-window aggregate of the
// monitoring series: the tick span its samples covered and the
// per-metric stats. ClassRunning carries one Running-style stat per
// traffic class on multi-class scenario runs; nil otherwise.
type TimelineWindow struct {
	Start, End   int64
	Samples      int
	Utilization  WindowStat
	Running      WindowStat
	Suspended    WindowStat
	WastedArea   WindowStat
	ClassRunning []WindowStat `json:",omitempty"`
}

// DefaultWindowSamples is the windowed-monitoring default: samples
// per aggregation window on streamed or timeline-writing runs that
// leave Params.WindowSamples zero.
const DefaultWindowSamples = 4096

// TimelineText renders the recorded utilisation/queue sparklines;
// empty unless Params.SampleEvery was set.
func (r Result) TimelineText() string { return r.timelineText }

// Run executes one simulation.
func Run(p Params) (Result, error) {
	return runScratch(p, nil)
}

// runScratch is Run with an optional donated run context: the
// experiment helpers give each of their workers one context for its
// whole unit stream, so a sweep reallocates per-run state once per
// worker instead of once per cell. Results are identical either way
// (TestScratchReuseAcrossRuns pins this at the core layer).
func runScratch(p Params, scratch *core.RunContext) (Result, error) {
	cp, err := p.coreParams()
	if err != nil {
		return Result{}, err
	}
	cp.Scratch = scratch
	rec, timelineFile, err := buildRecorder(p, &cp)
	if err != nil {
		return Result{}, err
	}
	closeTimeline := func() error {
		if timelineFile == nil {
			return nil
		}
		f := timelineFile
		timelineFile = nil
		return f.Close()
	}
	s, err := core.New(cp)
	if err != nil {
		closeTimeline()
		return Result{}, err
	}
	res, err := s.Run()
	if err != nil {
		closeTimeline()
		return Result{}, err
	}
	out, err := assembleResult(res, cp, rec)
	if err != nil {
		closeTimeline()
		return Result{}, err
	}
	if err := closeTimeline(); err != nil {
		return Result{}, err
	}
	return out, nil
}

// buildRecorder constructs the run's monitoring recorder from the
// sampling knobs and hooks it into the lowered parameters; rec is nil
// when sampling is off. When Params.TimelinePath requests an
// incremental timeline file the returned *os.File is the open sink
// the caller must close after the run.
func buildRecorder(p Params, cp *core.Params) (rec *monitor.Recorder, timelineFile *os.File, err error) {
	if p.SampleEvery <= 0 {
		return nil, nil, nil
	}
	window := p.WindowSamples
	if window == 0 && (p.Stream || p.TimelinePath != "") {
		window = DefaultWindowSamples
	}
	switch {
	case window > 0:
		var sink func(monitor.WindowRow) error
		if p.TimelinePath != "" {
			f, ferr := os.Create(p.TimelinePath)
			if ferr != nil {
				return nil, nil, ferr
			}
			timelineFile = f
			sink = monitor.NewTimelineWriter(f).Write
		}
		rec = monitor.NewWindowRecorder(p.SampleEvery, window, sink)
	default:
		rec = monitor.NewRecorder(p.SampleEvery)
	}
	if cp.Scenario != nil && cp.Scenario.MultiClass() {
		rec.Classes = len(cp.Scenario.Classes)
	}
	cp.Recorder = rec
	return rec, timelineFile, nil
}

// assembleResult converts the engine result to the public form and
// drains the monitoring recorder into it.
func assembleResult(res *core.Result, cp core.Params, rec *monitor.Recorder) (Result, error) {
	out := wrap(res, cp)
	if rec != nil {
		if rec.Windowed() {
			if err := rec.FinishWindows(); err != nil {
				return Result{}, err
			}
			for _, row := range rec.Windows() {
				out.Windows = append(out.Windows, publicWindow(row))
			}
			out.WindowsTotal = rec.WindowsTotal()
		} else {
			for _, sm := range rec.Samples() {
				out.Timeline = append(out.Timeline, TimelinePoint{
					Time:         sm.Time,
					RunningTasks: sm.Running,
					Suspended:    sm.Suspended,
					Utilization:  sm.Utilization,
					WastedArea:   sm.WastedArea,
				})
			}
		}
		out.timelineText = rec.Timeline(60)
	}
	return out, nil
}

// publicWindow converts an internal window row to the public mirror.
func publicWindow(row monitor.WindowRow) TimelineWindow {
	stat := func(s monitor.WindowStat) WindowStat {
		return WindowStat{Min: s.Min, Max: s.Max, Mean: s.Mean, P99: s.P99}
	}
	out := TimelineWindow{
		Start:       row.Start,
		End:         row.End,
		Samples:     row.Samples,
		Utilization: stat(row.Utilization),
		Running:     stat(row.Running),
		Suspended:   stat(row.Suspended),
		WastedArea:  stat(row.WastedArea),
	}
	for _, cs := range row.ClassRunning {
		out.ClassRunning = append(out.ClassRunning, stat(cs))
	}
	return out
}

// RunTrace executes one simulation with the task stream read from a
// trace (see the dreamgen tool); nodes and configurations still come
// from the parameters.
func RunTrace(r io.Reader, p Params) (Result, error) {
	cp, err := p.coreParams()
	if err != nil {
		return Result{}, err
	}
	cp.Source = workload.NewTraceReader(r)
	s, err := core.New(cp)
	if err != nil {
		return Result{}, err
	}
	res, err := s.Run()
	if err != nil {
		return Result{}, err
	}
	return wrap(res, cp), nil
}

// GenerateTrace synthesises the task stream the given parameters
// would produce and writes it as a trace. The stream is written task
// by task — generating a million-task trace needs O(1) task memory.
func GenerateTrace(w io.Writer, p Params) error {
	cp, err := p.coreParams()
	if err != nil {
		return err
	}
	s, err := core.New(cp)
	if err != nil {
		return err
	}
	return workload.WriteTraceFrom(w, s.Source())
}

// Compare runs the full- and partial-reconfiguration scenarios over
// identical inputs (same seed) — the paper's head-to-head experiment.
// With Params.Parallelism > 1 the two scenarios run concurrently;
// results are identical either way.
func Compare(p Params) (full, partial Result, err error) {
	workers := workersFor(p.Parallelism, 2)
	scratch := newScratchPool(workers)
	res, err := exec.MapWorkers(context.Background(), workers, 2,
		func(_ context.Context, w, i int) (Result, error) {
			q := p
			q.PartialReconfig = i == 1
			return runScratch(q, scratch.get(w))
		})
	if err != nil {
		return Result{}, Result{}, err
	}
	return res[0], res[1], nil
}

// wrap converts an engine result to the public form.
func wrap(res *core.Result, cp core.Params) Result {
	r := res.Report
	out := Result{
		AvgWastedAreaPerTask:      r.AvgWastedAreaPerTask,
		AvgRunningTimePerTask:     r.AvgRunningTimePerTask,
		AvgReconfigCountPerNode:   r.AvgReconfigCountPerNode,
		AvgReconfigTimePerTask:    r.AvgReconfigTimePerTask,
		AvgWaitingTimePerTask:     r.AvgWaitingTimePerTask,
		AvgSchedulingStepsPerTask: r.AvgSchedulingStepsPerTask,
		TotalDiscardedTasks:       r.TotalDiscardedTasks,
		TotalSchedulerWorkload:    r.TotalSchedulerWorkload,
		TotalUsedNodes:            r.TotalUsedNodes,
		TotalSimulationTime:       r.TotalSimulationTime,
		TotalTasks:                r.TotalTasks,
		CompletedTasks:            r.CompletedTasks,
		Reconfigurations:          r.Reconfigurations,
		SusQueuePeak:              r.SusQueuePeak,
		DiscardRate:               r.DiscardRate,
		NodeCrashes:               r.NodeCrashes,
		NodeRecoveries:            r.NodeRecoveries,
		TasksRetried:              r.TasksRetried,
		TasksLost:                 r.TasksLost,
		ReconfigFaults:            r.ReconfigFaults,
		WastedConfigTicks:         r.WastedConfigTicks,
		AvgDowntimePerNode:        r.AvgDowntimePerNode,
		Phases:                    res.Phases,
		Scenario:                  res.Scenario,
		Policy:                    res.Policy,
		Seed:                      res.Seed,
		rep:                       r,
		xml:                       res.XML(cp),
		classRows:                 res.Classes,
	}
	for _, c := range res.Classes {
		out.Classes = append(out.Classes, ClassStat{
			Name:           c.Name,
			Generated:      c.Generated,
			Completed:      c.Completed,
			Discarded:      c.Discarded,
			Lost:           c.Lost,
			AvgWaitingTime: c.AvgWaitingTime,
			AvgRunningTime: c.AvgRunningTime,
		})
	}
	return out
}

// TableI renders the run's Table I metrics as a text table; on
// multi-class scenario runs a per-class block follows the paper's
// rows.
func (r Result) TableI() string {
	return report.TableIText(r.rep) + report.ClassTableText(r.classRows)
}

// WriteXML emits the run's XML simulation report (output subsystem).
func (r Result) WriteXML(w io.Writer) error { return report.WriteXML(w, r.xml) }

// CompareTable renders two runs side by side.
func CompareTable(a, b Result) string {
	return report.CompareText(a.Scenario, a.rep, b.Scenario, b.rep)
}
