// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation section, plus the ablation benches DESIGN.md
// calls out. Figure benches run both reconfiguration scenarios over
// identical inputs at a reduced task grid and report the figure's
// metric for each scenario via b.ReportMetric, so `go test -bench=.`
// regenerates the paper's comparisons alongside wall-time numbers:
//
//	BenchmarkFig6a_WastedArea100-8   ...  229.5 partial_y  1320 full_y
//
// The curve *shapes* (who wins, roughly by how much) reproduce the
// paper; absolute timetick values differ because the substrate is a
// reimplementation, not the authors' machine. EXPERIMENTS.md records
// the full-grid values.
package dreamsim_test

import (
	"runtime"
	"testing"

	"dreamsim"
)

// benchTasks keeps figure benches fast while staying in the regime
// where every paper ordering is visible.
const benchTasks = 2000

// benchCompare runs both scenarios and reports the chosen metric.
func benchCompare(b *testing.B, nodes int, metric func(dreamsim.Result) float64) {
	b.Helper()
	p := dreamsim.DefaultParams()
	p.Nodes = nodes
	p.Tasks = benchTasks
	var fullY, partY float64
	for i := 0; i < b.N; i++ {
		full, partial, err := dreamsim.Compare(p)
		if err != nil {
			b.Fatal(err)
		}
		fullY, partY = metric(full), metric(partial)
	}
	b.ReportMetric(fullY, "full_y")
	b.ReportMetric(partY, "partial_y")
}

// --- Table I / Table II ---

// BenchmarkTableI_MetricsPipeline exercises the whole metrics
// pipeline: simulate, derive every Table I metric, render the table.
func BenchmarkTableI_MetricsPipeline(b *testing.B) {
	p := dreamsim.DefaultParams()
	p.Nodes = 100
	p.Tasks = benchTasks
	for i := 0; i < b.N; i++ {
		res, err := dreamsim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.TableI()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figures 6a–10 ---

func BenchmarkFig6a_WastedArea100(b *testing.B) {
	benchCompare(b, 100, func(r dreamsim.Result) float64 { return r.AvgWastedAreaPerTask })
}

func BenchmarkFig6b_WastedArea200(b *testing.B) {
	benchCompare(b, 200, func(r dreamsim.Result) float64 { return r.AvgWastedAreaPerTask })
}

func BenchmarkFig7a_ReconfigCount100(b *testing.B) {
	benchCompare(b, 100, func(r dreamsim.Result) float64 { return r.AvgReconfigCountPerNode })
}

func BenchmarkFig7b_ReconfigCount200(b *testing.B) {
	benchCompare(b, 200, func(r dreamsim.Result) float64 { return r.AvgReconfigCountPerNode })
}

func BenchmarkFig8a_WaitTime100(b *testing.B) {
	benchCompare(b, 100, func(r dreamsim.Result) float64 { return r.AvgWaitingTimePerTask })
}

func BenchmarkFig8b_WaitTime200(b *testing.B) {
	benchCompare(b, 200, func(r dreamsim.Result) float64 { return r.AvgWaitingTimePerTask })
}

func BenchmarkFig9a_SchedSteps200(b *testing.B) {
	benchCompare(b, 200, func(r dreamsim.Result) float64 { return r.AvgSchedulingStepsPerTask })
}

func BenchmarkFig9b_Workload200(b *testing.B) {
	benchCompare(b, 200, func(r dreamsim.Result) float64 { return float64(r.TotalSchedulerWorkload) })
}

func BenchmarkFig10_ConfigTime200(b *testing.B) {
	benchCompare(b, 200, func(r dreamsim.Result) float64 { return r.AvgReconfigTimePerTask })
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationPlacement compares the Allocation-phase criteria.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, placement := range []string{"best-fit", "first-fit", "worst-fit", "random-fit"} {
		b.Run(placement, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			p.Placement = placement
			var wasted float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				wasted = res.AvgWastedAreaPerTask
			}
			b.ReportMetric(wasted, "wasted_per_task")
		})
	}
}

// BenchmarkAblationSuspension measures the suspension queue's value:
// without it, overload turns into discards.
func BenchmarkAblationSuspension(b *testing.B) {
	for _, sus := range []struct {
		name    string
		disable bool
	}{{"with-queue", false}, {"without-queue", true}} {
		b.Run(sus.name, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			p.DisableSuspension = sus.disable
			var discards float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				discards = float64(res.TotalDiscardedTasks)
			}
			b.ReportMetric(discards, "discarded")
		})
	}
}

// BenchmarkAblationLoadBalance toggles the least-loaded tie-break.
func BenchmarkAblationLoadBalance(b *testing.B) {
	for _, lb := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(lb.name, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			p.LoadBalance = lb.on
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				wait = res.AvgWaitingTimePerTask
			}
			b.ReportMetric(wait, "wait_per_task")
		})
	}
}

// BenchmarkAblationClosestMatch sweeps the share of tasks whose
// preferred configuration is absent (the paper fixes it at 15%).
func BenchmarkAblationClosestMatch(b *testing.B) {
	for _, pct := range []struct {
		name string
		val  float64
	}{{"0pct", 0}, {"15pct", 0.15}, {"50pct", 0.50}} {
		b.Run(pct.name, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			p.ClosestMatchPct = pct.val
			var wasted float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				wasted = res.AvgWastedAreaPerTask
			}
			b.ReportMetric(wasted, "wasted_per_task")
		})
	}
}

// BenchmarkAblationHeteroCaps sweeps capability scarcity (the Eq. 1
// caps extension): rarer capabilities mean fewer compatible nodes.
func BenchmarkAblationHeteroCaps(b *testing.B) {
	for _, tc := range []struct {
		name              string
		nodeProb, cfgProb float64
	}{
		{"homogeneous", 0, 0},
		{"caps-common", 0.8, 0.3},
		{"caps-scarce", 0.3, 0.5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			if tc.nodeProb > 0 {
				p.CapKinds = []string{"bram", "dsp", "serdes"}
				p.NodeCapProb = tc.nodeProb
				p.ConfigCapProb = tc.cfgProb
			}
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				wait = res.AvgWaitingTimePerTask
			}
			b.ReportMetric(wait, "wait_per_task")
		})
	}
}

// BenchmarkAblationRuntimeDist sweeps the t_required distribution:
// the paper's uniform runtimes vs the heavy-tailed fits recorded
// workloads show.
func BenchmarkAblationRuntimeDist(b *testing.B) {
	for _, dist := range []string{"uniform", "lognormal", "pareto"} {
		b.Run(dist, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			p.TaskTimeDistribution = dist
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				wait = res.AvgWaitingTimePerTask
			}
			b.ReportMetric(wait, "wait_per_task")
		})
	}
}

// BenchmarkAblationDefrag toggles idle-node compaction: fighting
// region fragmentation eagerly costs reconfigurations.
func BenchmarkAblationDefrag(b *testing.B) {
	for _, tc := range []struct {
		name      string
		threshold int
	}{{"off", 0}, {"threshold-2", 2}, {"threshold-4", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = benchTasks
			p.TaskTimeRange = [2]int64{100, 2000} // light load: defrag can fire mid-run
			p.DefragThreshold = tc.threshold
			var reconf float64
			for i := 0; i < b.N; i++ {
				res, err := dreamsim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				reconf = res.AvgReconfigCountPerNode
			}
			b.ReportMetric(reconf, "reconf_per_node")
		})
	}
}

// BenchmarkAblationClock compares the event-jumping clock against the
// paper-literal tick-by-tick loop (identical results, different wall
// time).
func BenchmarkAblationClock(b *testing.B) {
	for _, clock := range []struct {
		name string
		tick bool
	}{{"event-jump", false}, {"tick-step", true}} {
		b.Run(clock.name, func(b *testing.B) {
			p := dreamsim.DefaultParams()
			p.Nodes = 100
			p.Tasks = 500 // tick-step walks every timetick; keep it modest
			p.TickStep = clock.tick
			for i := 0; i < b.N; i++ {
				if _, err := dreamsim.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sweep engine ---

// sweepGrid is the matrix the sweep benchmarks time: 3×3 cells, two
// scenarios each, so 18 independent simulations per iteration.
var sweepNodes = []int{50, 100, 150}
var sweepTasks = []int{500, 1000, 1500}

func benchMatrix(b *testing.B, parallel int, fastSearch bool) {
	b.Helper()
	p := dreamsim.DefaultParams()
	p.Parallelism = parallel
	p.FastSearch = fastSearch
	cells := len(sweepNodes) * len(sweepTasks)
	for i := 0; i < b.N; i++ {
		if _, err := dreamsim.RunMatrix(p, sweepNodes, sweepTasks, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkMatrixSweep is the sequential baseline for the parallel
// experiment engine.
func BenchmarkMatrixSweep(b *testing.B) {
	benchMatrix(b, 1, false)
}

// BenchmarkParallelMatrixSweep fans the same grid over all cores;
// results are byte-identical to BenchmarkMatrixSweep (see
// TestMatrixParallelDeterminism), only wall time changes.
func BenchmarkParallelMatrixSweep(b *testing.B) {
	benchMatrix(b, runtime.NumCPU(), false)
}

// BenchmarkMatrixSweepFastSearch measures the indexed resource-search
// path under the same grid (sequential, to isolate its effect).
func BenchmarkMatrixSweepFastSearch(b *testing.B) {
	benchMatrix(b, 1, true)
}

// BenchmarkThroughput reports simulator throughput in tasks/second —
// the engine-speed number for the README.
func BenchmarkThroughput(b *testing.B) {
	p := dreamsim.DefaultParams()
	p.Nodes = 200
	p.Tasks = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dreamsim.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Tasks)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}
