package dreamsim

import (
	"fmt"
	"io"
	"sort"

	"dreamsim/internal/core"
	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/taskgraph"
	"dreamsim/internal/workload"
)

// GraphTask is one task of a DAG workload (the paper's §VII
// future-work extension: "scheduling policies to schedule task graphs
// on the distributed system with reconfigurable nodes").
type GraphTask struct {
	// ID is the unique task number.
	ID int
	// RequiredTime is t_required in timeticks.
	RequiredTime int64
	// PrefConfig is the preferred configuration number. Numbers
	// outside [0, Params.Configs) model a configuration absent from
	// the list: the scheduler falls back to the closest match by
	// NeededArea.
	PrefConfig int
	// NeededArea is the task's fabric requirement. It must be
	// positive; for tasks whose PrefConfig exists the scheduler uses
	// the configuration's own area, so any positive value works.
	NeededArea int64
	// SubmitTime is the tick the task enters the system.
	SubmitTime int64
	// DependsOn lists IDs of tasks that must complete first. Each
	// must be the ID of an earlier entry in the workload slice (this
	// makes cycles impossible).
	DependsOn []int
}

// GraphWorkload is a DAG workload plus its intrinsic bounds.
type GraphWorkload struct {
	Tasks []GraphTask
	// CriticalPath is the longest dependency chain in timeticks — the
	// makespan lower bound on unlimited nodes.
	CriticalPath int64
	// TotalWork is the sum of all RequiredTimes.
	TotalWork int64
}

// RunGraph simulates a DAG workload: tasks arrive at their
// SubmitTimes but only become schedulable when every dependency has
// completed. Dependants of discarded tasks are discarded.
// TotalSimulationTime in the result is the workload's makespan.
func RunGraph(tasks []GraphTask, p Params) (Result, error) {
	if len(tasks) == 0 {
		return Result{}, fmt.Errorf("dreamsim: empty graph workload")
	}
	seen := make(map[int]bool, len(tasks))
	deps := make(map[int][]int)
	mtasks := make([]*model.Task, 0, len(tasks))
	for _, gt := range tasks {
		if seen[gt.ID] {
			return Result{}, fmt.Errorf("dreamsim: duplicate graph task ID %d", gt.ID)
		}
		for _, d := range gt.DependsOn {
			if !seen[d] {
				return Result{}, fmt.Errorf("dreamsim: task %d depends on %d, which is not an earlier task",
					gt.ID, d)
			}
		}
		seen[gt.ID] = true
		if len(gt.DependsOn) > 0 {
			deps[gt.ID] = append([]int(nil), gt.DependsOn...)
		}
		mt := model.NewTask(gt.ID, gt.NeededArea, gt.PrefConfig, gt.RequiredTime, gt.SubmitTime)
		if err := mt.Validate(); err != nil {
			return Result{}, err
		}
		mtasks = append(mtasks, mt)
	}
	sort.SliceStable(mtasks, func(i, j int) bool { return mtasks[i].CreateTime < mtasks[j].CreateTime })
	src, err := workload.SliceSource(mtasks)
	if err != nil {
		return Result{}, err
	}

	// The spec's Tasks count only sizes the synthetic generator, which
	// the explicit source replaces; echo the real count for reports.
	p.Tasks = len(tasks)
	cp, err := p.coreParams()
	if err != nil {
		return Result{}, err
	}
	cp.Source = src
	cp.Deps = deps
	s, err := core.New(cp)
	if err != nil {
		return Result{}, err
	}
	res, err := s.Run()
	if err != nil {
		return Result{}, err
	}
	return wrap(res, cp), nil
}

// SWFMapping controls how Standard Workload Format jobs (Parallel
// Workloads Archive traces) become DReAMSim tasks. Zero values take
// sensible defaults: 1 tick per second, 100 area units per processor
// clamped into the Table II configuration range, executables mapped
// onto 50 configurations.
type SWFMapping struct {
	// TicksPerSecond scales SWF seconds into timeticks.
	TicksPerSecond int64
	// AreaPerProc converts processor counts into fabric area.
	AreaPerProc int64
	// MinArea/MaxArea clamp the derived area.
	MinArea, MaxArea int64
	// Configs maps executable numbers onto configuration numbers.
	Configs int
	// MaxJobs caps the conversion (0 = all jobs).
	MaxJobs int
	// KeepDependencies converts SWF "preceding job" links into task
	// dependencies.
	KeepDependencies bool
}

// LoadSWF converts a Standard Workload Format log — the de-facto
// format of recorded cluster traces — into a DAG workload runnable
// with RunGraph. Cancelled/failed jobs (run time ≤ 0) are skipped.
func LoadSWF(r io.Reader, m SWFMapping) ([]GraphTask, error) {
	tasks, deps, err := workload.ParseSWF(r, workload.SWFMapping{
		TicksPerSecond:   m.TicksPerSecond,
		AreaPerProc:      m.AreaPerProc,
		MinArea:          m.MinArea,
		MaxArea:          m.MaxArea,
		Configs:          m.Configs,
		MaxJobs:          m.MaxJobs,
		KeepDependencies: m.KeepDependencies,
	})
	if err != nil {
		return nil, err
	}
	out := make([]GraphTask, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, GraphTask{
			ID:           t.No,
			RequiredTime: t.RequiredTime,
			PrefConfig:   t.PrefConfig,
			NeededArea:   t.NeededArea,
			SubmitTime:   t.CreateTime,
			DependsOn:    deps[t.No],
		})
	}
	return out, nil
}

// RandomLayeredGraph generates a random layered DAG workload against
// the given parameters: `layers` levels of up to `width` parallel
// tasks, an edge from one level to the next with probability
// edgeProb, submissions submitGap ticks apart. The task attribute
// ranges come from p (Table II by default).
func RandomLayeredGraph(p Params, layers, width int, edgeProb float64, submitGap int64) (GraphWorkload, error) {
	spec := taskgraph.LayeredSpec{
		Layers: layers, Width: width, EdgeProb: edgeProb,
		Workload: p.spec(), SubmitGap: submitGap,
	}
	g, err := taskgraph.GenerateLayered(rng.New(p.Seed), spec)
	if err != nil {
		return GraphWorkload{}, err
	}
	wl := GraphWorkload{TotalWork: g.TotalWork()}
	wl.CriticalPath, _ = g.CriticalPath()
	for _, v := range g.Vertices() {
		gt := GraphTask{
			ID:           v.Task.No,
			RequiredTime: v.Task.RequiredTime,
			PrefConfig:   v.Task.PrefConfig,
			NeededArea:   v.Task.NeededArea,
			SubmitTime:   v.Task.CreateTime,
		}
		for _, parent := range v.Parents {
			gt.DependsOn = append(gt.DependsOn, parent.Task.No)
		}
		wl.Tasks = append(wl.Tasks, gt)
	}
	return wl, nil
}
