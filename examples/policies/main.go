// Placement-policy ablation: the paper's Allocation phase picks the
// idle node with minimum AvailableArea ("best fit", so large-area
// nodes stay free for later reconfigurations). This example compares
// that criterion against first-fit, worst-fit and random-fit, plus
// the load-balancing tie-break, on the same workload.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"dreamsim"
)

func main() {
	base := dreamsim.DefaultParams()
	base.Nodes = 100
	base.Tasks = 3000
	base.Seed = 11
	base.PartialReconfig = true

	type row struct {
		label string
		mut   func(*dreamsim.Params)
	}
	rows := []row{
		{"best-fit (paper)", func(p *dreamsim.Params) { p.Placement = "best-fit" }},
		{"best-fit + load balance", func(p *dreamsim.Params) { p.Placement = "best-fit"; p.LoadBalance = true }},
		{"first-fit", func(p *dreamsim.Params) { p.Placement = "first-fit" }},
		{"worst-fit", func(p *dreamsim.Params) { p.Placement = "worst-fit" }},
		{"random-fit", func(p *dreamsim.Params) { p.Placement = "random-fit" }},
	}

	fmt.Printf("placement ablation — %d nodes, %d tasks, partial reconfiguration\n\n", base.Nodes, base.Tasks)
	fmt.Printf("%-26s %14s %14s %14s %12s\n",
		"policy", "wasted/task", "wait/task", "reconf/node", "discarded")
	for _, r := range rows {
		p := base
		r.mut(&p)
		res, err := dreamsim.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %14.2f %14.0f %14.2f %12d\n",
			r.label, res.AvgWastedAreaPerTask, res.AvgWaitingTimePerTask,
			res.AvgReconfigCountPerNode, res.TotalDiscardedTasks)
	}

	fmt.Println("\nsuspension-queue ablation (same workload):")
	for _, sus := range []bool{false, true} {
		p := base
		p.DisableSuspension = sus
		res, err := dreamsim.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		mode := "with suspension queue"
		if sus {
			mode = "without suspension queue"
		}
		fmt.Printf("  %-26s completed %4d/%d  discarded %4d  wait/task %.0f\n",
			mode, res.CompletedTasks, res.TotalTasks, res.TotalDiscardedTasks,
			res.AvgWaitingTimePerTask)
	}
}
