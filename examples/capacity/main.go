// Capacity planning: how many reconfigurable nodes does a target
// workload need? This example sweeps the node count for a fixed
// arrival stream and reports waiting time and queue depth for both
// reconfiguration methods — the provisioning question the paper's
// framework is built to answer ("the proposed simulation framework
// can be used to test different scheduling policies for a given set
// of parameters, such as tasks, nodes, configurations...").
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"dreamsim"
)

func main() {
	base := dreamsim.DefaultParams()
	base.Tasks = 2000
	base.Seed = 21

	fmt.Println("capacity sweep — 2000 tasks, Table II workload")
	fmt.Printf("%-7s | %-26s | %-26s\n", "", "full reconfiguration", "partial reconfiguration")
	fmt.Printf("%-7s | %12s %13s | %12s %13s\n",
		"nodes", "wait/task", "queue peak", "wait/task", "queue peak")
	for _, nodes := range []int{50, 100, 200, 400, 800, 1600} {
		p := base
		p.Nodes = nodes
		full, partial, err := dreamsim.Compare(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d | %12.0f %13d | %12.0f %13d\n",
			nodes,
			full.AvgWaitingTimePerTask, full.SusQueuePeak,
			partial.AvgWaitingTimePerTask, partial.SusQueuePeak)
	}

	fmt.Println("\nrule of thumb from the sweep: partial reconfiguration reaches any")
	fmt.Println("given waiting-time target with roughly half the nodes — each node")
	fmt.Println("runs one task per resident configuration instead of one in total.")
}
