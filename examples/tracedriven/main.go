// Trace-driven simulation: the "real workloads" input path of the
// paper's input subsystem. This example synthesises a bursty
// double-peak workload that the built-in generator cannot produce,
// writes it as a dreamsim trace, and replays it under both
// reconfiguration scenarios.
//
//	go run ./examples/tracedriven
package main

import (
	"bytes"
	"fmt"
	"log"

	"dreamsim"
)

// buildTrace writes a hand-crafted workload: a morning burst of many
// short tasks followed by an afternoon burst of fewer long tasks —
// the kind of diurnal pattern recorded cluster traces show.
func buildTrace() *bytes.Buffer {
	var buf bytes.Buffer
	buf.WriteString("# dreamsim-trace v1\n")
	buf.WriteString("# synthetic diurnal workload: short burst then long burst\n")
	no := 0
	t := int64(0)
	// Morning: 600 short tasks arriving every 5 ticks.
	for i := 0; i < 600; i++ {
		t += 5
		area := 200 + (i*37)%1200
		fmt.Fprintf(&buf, "task %d %d %d %d %d %d\n",
			no, t, 500+(i*113)%4500, i%50, area, area*64)
		no++
	}
	// Lull.
	t += 20000
	// Afternoon: 200 long tasks arriving every 40 ticks.
	for i := 0; i < 200; i++ {
		t += 40
		area := 400 + (i*61)%1400
		fmt.Fprintf(&buf, "task %d %d %d %d %d %d\n",
			no, t, 30000+(i*331)%60000, (i*7)%50, area, area*64)
		no++
	}
	return &buf
}

func main() {
	p := dreamsim.DefaultParams()
	p.Nodes = 100
	p.Tasks = 800 // node/config generation only; arrivals come from the trace

	fmt.Println("replaying a hand-crafted diurnal trace (800 tasks) under both scenarios:")
	fmt.Printf("%-10s %14s %14s %14s %12s\n", "scenario", "wasted/task", "wait/task", "reconf/node", "completed")
	for _, partial := range []bool{false, true} {
		p.PartialReconfig = partial
		res, err := dreamsim.RunTrace(buildTrace(), p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.2f %14.0f %14.2f %12d\n",
			res.Scenario, res.AvgWastedAreaPerTask, res.AvgWaitingTimePerTask,
			res.AvgReconfigCountPerNode, res.CompletedTasks)
	}
	fmt.Println("\nthe partial-reconfiguration advantage persists on recorded workloads,")
	fmt.Println("not just on the synthetic Table II arrival process.")
}
