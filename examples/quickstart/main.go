// Quickstart: run one DReAMSim simulation with the paper's Table II
// parameters and print every Table I performance metric.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dreamsim"
)

func main() {
	// Start from the paper's defaults (200 nodes, 50 configurations,
	// Table II ranges) and pick a workload size.
	p := dreamsim.DefaultParams()
	p.Tasks = 2000
	p.PartialReconfig = true
	p.Seed = 42

	res, err := dreamsim.Run(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DReAMSim quickstart — %s reconfiguration, policy %s\n\n", res.Scenario, res.Policy)
	fmt.Print(res.TableI())

	fmt.Printf("\n%d of %d tasks completed (%d discarded), suspension queue peaked at %d\n",
		res.CompletedTasks, res.TotalTasks, res.TotalDiscardedTasks, res.SusQueuePeak)

	fmt.Println("\nhow tasks were placed:")
	for _, phase := range dreamsim.SortedPhaseNames(res) {
		fmt.Printf("  %-18s %d\n", phase, res.Phases[phase])
	}
}
