// SWF replay: converts a Standard Workload Format log — the format of
// the Parallel Workloads Archive's recorded cluster traces — into a
// DReAMSim workload and replays it under both reconfiguration
// scenarios, honouring the trace's job precedence links.
//
// The embedded log is a synthetic excerpt in genuine SWF shape (18
// fields, comment headers, cancelled jobs, precedence); point
// LoadSWF at any archive file to replay real traces.
//
//	go run ./examples/swfreplay
package main

import (
	"fmt"
	"log"
	"strings"

	"dreamsim"
)

// swfLog mimics an archive excerpt: a burst of short interactive
// jobs, overlapping long batch jobs (some chained via field 17), and
// a cancelled job that replay must skip.
func swfLog() string {
	var b strings.Builder
	b.WriteString("; Synthetic SWF excerpt (format: Feitelson PWA, 18 fields)\n")
	b.WriteString("; UnixStartTime: 0\n")
	job := 1
	emit := func(submit, run, procs, exe, preceding int) {
		fmt.Fprintf(&b, "%d %d 0 %d %d -1 -1 %d %d -1 1 10%d 5 %d 1 1 %d -1\n",
			job, submit, run, procs, procs, run, job%7, exe, preceding)
		job++
	}
	// Interactive burst: 120 short jobs, 1-4 procs.
	for i := 0; i < 120; i++ {
		emit(i*3, 30+(i*17)%240, 1+i%4, i%40, -1)
	}
	// A cancelled job (run time -1) that must be skipped.
	fmt.Fprintf(&b, "%d 400 -1 -1 8 -1 -1 8 100 -1 0 105 5 9 1 1 -1 -1\n", job)
	job++
	// Batch phase: 40 long jobs, 8-16 procs, every third chained to
	// the previous batch job.
	prev := -1
	for i := 0; i < 40; i++ {
		p := -1
		if i%3 == 2 {
			p = prev
		}
		cur := job
		emit(500+i*20, 2000+(i*331)%6000, 8+(i%3)*4, 40+i%10, p)
		prev = cur
	}
	return b.String()
}

func main() {
	tasks, err := dreamsim.LoadSWF(strings.NewReader(swfLog()), dreamsim.SWFMapping{
		TicksPerSecond:   1,
		KeepDependencies: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	deps := 0
	for _, t := range tasks {
		deps += len(t.DependsOn)
	}
	fmt.Printf("loaded %d SWF jobs (%d precedence links)\n\n", len(tasks), deps)

	p := dreamsim.DefaultParams()
	p.Nodes = 12
	fmt.Printf("%-10s %12s %14s %14s %12s\n",
		"scenario", "makespan", "wait/task", "wasted/task", "completed")
	for _, partial := range []bool{false, true} {
		p.PartialReconfig = partial
		res, err := dreamsim.RunGraph(tasks, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %14.0f %14.1f %9d/%d\n",
			res.Scenario, res.TotalSimulationTime, res.AvgWaitingTimePerTask,
			res.AvgWastedAreaPerTask, res.CompletedTasks, res.TotalTasks)
	}
	fmt.Println("\nreal Parallel Workloads Archive traces replay the same way:")
	fmt.Println("  f, _ := os.Open(\"LLNL-Thunder-2007-1.1-cln.swf\")")
	fmt.Println("  tasks, _ := dreamsim.LoadSWF(f, dreamsim.SWFMapping{MaxJobs: 10000})")
}
