// Partial vs full reconfiguration: the paper's headline experiment.
// Runs both scenarios over identical inputs (same seed ⇒ same nodes,
// configurations and task stream) at 100 nodes, prints the metrics
// side by side, and renders a miniature Fig. 6a (average wasted area
// per task) as an ASCII chart.
//
//	go run ./examples/partial_vs_full
package main

import (
	"fmt"
	"log"

	"dreamsim"
)

func main() {
	p := dreamsim.DefaultParams()
	p.Nodes = 100
	p.Tasks = 3000
	p.Seed = 7

	full, partial, err := dreamsim.Compare(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("head-to-head at %d nodes, %d tasks (seed %d)\n\n", p.Nodes, p.Tasks, p.Seed)
	fmt.Print(dreamsim.CompareTable(full, partial))

	fmt.Printf("\npartial reconfiguration wastes %.1fx less area per task\n",
		full.AvgWastedAreaPerTask/partial.AvgWastedAreaPerTask)
	fmt.Printf("partial reconfiguration waits %.1fx less per task\n",
		full.AvgWaitingTimePerTask/partial.AvgWaitingTimePerTask)
	fmt.Printf("but reconfigures %.1fx more per node (cheap under partial reconfiguration)\n\n",
		partial.AvgReconfigCountPerNode/full.AvgReconfigCountPerNode)

	// Miniature Fig. 6a over a reduced task grid.
	fig, err := dreamsim.RunFigure(dreamsim.Fig6a, []int{1000, 2000, 3000}, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.Plot())
	fmt.Println(fig.Summary())
}
