// Baselines: the same workload through three simulator models —
// GridSim-style fixed-capacity GPPs, CRGridSim-style speedup-factor
// reconfigurables (the related work of the paper's §II), and the
// area-aware DReAMSim model (full and partial reconfiguration).
//
// The capacity-only models see none of the effects the paper studies:
// no fabric area means no wasted area, no configuration residency
// means no allocation-vs-reconfiguration trade-off, and a flat
// speedup hides the partial-reconfiguration advantage entirely. This
// example makes that limitation measurable — the reason DReAMSim
// exists.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"dreamsim"
)

func main() {
	p := dreamsim.DefaultParams()
	p.Nodes = 100
	p.Tasks = 3000
	p.Seed = 17

	fmt.Printf("one workload (%d tasks), four models, %d processing elements\n\n", p.Tasks, p.Nodes)
	fmt.Printf("%-34s %12s %14s %10s\n", "model", "makespan", "wait/task", "area-aware")

	// GridSim-style: heterogeneous fixed-capacity GPPs.
	grid, err := dreamsim.RunBaseline(dreamsim.BaselineParams{
		Resources:  p.Nodes,
		SpeedRange: [2]float64{0.5, 1.5},
	}, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %12d %14.0f %10s\n", "GridSim-style (fixed GPPs)", grid.Makespan, grid.AvgWaitPerTask, "no")

	// CRGridSim-style: same pool, all elements reconfigurable with a
	// 5x speedup and a flat switch delay — "the proposed extensions
	// were limited" (§II).
	cr, err := dreamsim.RunBaseline(dreamsim.BaselineParams{
		Resources:           p.Nodes,
		SpeedRange:          [2]float64{0.5, 1.5},
		ReconfigurableShare: 1,
		Speedup:             5,
		ReconfigDelay:       15,
	}, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %12d %14.0f %10s\n", "CRGridSim-style (speedup factor)", cr.Makespan, cr.AvgWaitPerTask, "no")

	// DReAMSim: the area-aware model, both reconfiguration methods.
	full, partial, err := dreamsim.Compare(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %12d %14.0f %10s\n", "DReAMSim, full reconfiguration", full.TotalSimulationTime, full.AvgWaitingTimePerTask, "yes")
	fmt.Printf("%-34s %12d %14.0f %10s\n", "DReAMSim, partial reconfiguration", partial.TotalSimulationTime, partial.AvgWaitingTimePerTask, "yes")

	fmt.Println("\nwhat the capacity-only models cannot express:")
	fmt.Printf("  wasted fabric per task        full %8.1f  vs partial %8.1f  (GridSim: no area model)\n",
		full.AvgWastedAreaPerTask, partial.AvgWastedAreaPerTask)
	fmt.Printf("  reconfigurations per node     full %8.2f  vs partial %8.2f  (CRGridSim: flat delay only)\n",
		full.AvgReconfigCountPerNode, partial.AvgReconfigCountPerNode)
	fmt.Printf("  config residency reuse        full %8d  vs partial %8d  allocations without reconfig\n",
		full.Phases["allocate"], partial.Phases["allocate"])
}
