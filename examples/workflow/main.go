// Workflow (task-graph) scheduling: the paper's §VII future-work
// extension. Builds a Montage-style mosaic pipeline DAG — N parallel
// reprojections feeding a fan-in of background corrections, a merge,
// and a final render — and compares how the two reconfiguration
// methods execute it against the graph's intrinsic bounds.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"dreamsim"
)

// montage builds the pipeline DAG with the given fan-out.
func montage(fanout int) dreamsim.GraphWorkload {
	var wl dreamsim.GraphWorkload
	id := 0
	add := func(req int64, cfg int, deps ...int) int {
		wl.Tasks = append(wl.Tasks, dreamsim.GraphTask{
			ID: id, RequiredTime: req, PrefConfig: cfg, NeededArea: 800,
			SubmitTime: int64(id), DependsOn: deps,
		})
		wl.TotalWork += req
		id++
		return id - 1
	}

	// Stage 1: parallel reprojections (DSP-heavy, config 0..9).
	var reprojected []int
	for i := 0; i < fanout; i++ {
		reprojected = append(reprojected, add(8000, i%10))
	}
	// Stage 2: pairwise background fits, each needs two reprojections.
	var fits []int
	for i := 0; i+1 < len(reprojected); i += 2 {
		fits = append(fits, add(3000, 10+i%5, reprojected[i], reprojected[i+1]))
	}
	// Stage 3: global merge waits for every fit.
	merge := add(12000, 20, fits...)
	// Stage 4: final render.
	add(6000, 21, merge)

	// Critical path: reprojection -> fit -> merge -> render.
	wl.CriticalPath = 8000 + 3000 + 12000 + 6000
	return wl
}

func main() {
	p := dreamsim.DefaultParams()
	p.Nodes = 8
	p.Seed = 5

	wl := montage(48)
	fmt.Printf("montage-style pipeline: %d tasks, total work %d ticks, critical path %d ticks\n\n",
		len(wl.Tasks), wl.TotalWork, wl.CriticalPath)

	fmt.Printf("%-10s %12s %14s %14s %12s\n",
		"scenario", "makespan", "vs crit.path", "wait/task", "reconf/node")
	for _, partial := range []bool{false, true} {
		p.PartialReconfig = partial
		res, err := dreamsim.RunGraph(wl.Tasks, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %13.2fx %14.0f %12.2f\n",
			res.Scenario, res.TotalSimulationTime,
			float64(res.TotalSimulationTime)/float64(wl.CriticalPath),
			res.AvgWaitingTimePerTask, res.AvgReconfigCountPerNode)
	}

	// A random layered DAG for comparison (generator-driven).
	fmt.Println("\nrandom layered DAG (12 layers, width 24):")
	rnd, err := dreamsim.RandomLayeredGraph(p, 12, 24, 0.3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tasks, total work %d, critical path %d\n",
		len(rnd.Tasks), rnd.TotalWork, rnd.CriticalPath)
	for _, partial := range []bool{false, true} {
		p.PartialReconfig = partial
		res, err := dreamsim.RunGraph(rnd.Tasks, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s makespan %8d (%.2fx critical path), %d/%d completed\n",
			res.Scenario, res.TotalSimulationTime,
			float64(res.TotalSimulationTime)/float64(rnd.CriticalPath),
			res.CompletedTasks, res.TotalTasks)
	}
}
