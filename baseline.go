package dreamsim

import (
	"dreamsim/internal/core"
	"dreamsim/internal/gridsim"
)

// BaselineParams configures a GridSim/CRGridSim-style fixed-capacity
// baseline (the related-work simulators of the paper's §II): GridSim
// models GPPs with fixed computing capacity; CRGridSim adds
// reconfigurable elements modelled only by a speedup factor and a
// flat reconfiguration delay — no fabric area, no configuration
// residency, no partial reconfiguration.
type BaselineParams struct {
	// Resources is the processing-element count.
	Resources int
	// SpeedRange bounds the GPP capacities relative to the reference
	// processor (task t_required is work on the reference).
	SpeedRange [2]float64
	// ReconfigurableShare is the fraction of CRGridSim-style
	// reconfigurable elements (0 = pure GridSim).
	ReconfigurableShare float64
	// Speedup is their speedup factor over the GPP capacity.
	Speedup float64
	// ReconfigDelay is their flat function-switch cost in ticks.
	ReconfigDelay int64
}

// BaselineResult carries the baseline's outcome.
type BaselineResult struct {
	Tasks             int64
	Makespan          int64
	AvgWaitPerTask    float64
	AvgTurnaround     float64
	TotalSwitches     int64
	AvgUtilization    float64
	ReconfigResources int
}

// RunBaseline schedules the exact task stream that Run(p) would see
// (same seed, same generator) onto a fixed-capacity baseline pool —
// earliest-finish-time FCFS, no area model. Contrasting its output
// with Run/Compare shows what the capacity-only related-work models
// cannot capture.
func RunBaseline(bp BaselineParams, p Params) (BaselineResult, error) {
	cp, err := p.coreParams()
	if err != nil {
		return BaselineResult{}, err
	}
	s, err := core.New(cp)
	if err != nil {
		return BaselineResult{}, err
	}
	// The simulator's source streams straight into the baseline —
	// same seed, same generator, no materialized copy of the workload.
	gres, err := gridsim.Run(gridsim.Params{
		Resources:           bp.Resources,
		SpeedLow:            bp.SpeedRange[0],
		SpeedHigh:           bp.SpeedRange[1],
		ReconfigurableShare: bp.ReconfigurableShare,
		Speedup:             bp.Speedup,
		ReconfigDelay:       bp.ReconfigDelay,
		Seed:                p.Seed,
	}, s.Source())
	if err != nil {
		return BaselineResult{}, err
	}
	return BaselineResult{
		Tasks:             gres.Tasks,
		Makespan:          gres.Makespan,
		AvgWaitPerTask:    gres.AvgWaitPerTask,
		AvgTurnaround:     gres.AvgTurnaround,
		TotalSwitches:     gres.TotalSwitches,
		AvgUtilization:    gres.AvgUtilization,
		ReconfigResources: gres.ReconfigResources,
	}, nil
}
