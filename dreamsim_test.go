package dreamsim_test

import (
	"bytes"
	"strings"
	"testing"

	"dreamsim"
)

func quick(tasks int) dreamsim.Params {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = tasks
	return p
}

func TestDefaultParamsMatchTableII(t *testing.T) {
	p := dreamsim.DefaultParams()
	if p.Nodes != 200 || p.Configs != 50 || p.NextTaskMaxInterval != 50 ||
		p.TaskTimeRange != [2]int64{100, 100000} ||
		p.ConfigAreaRange != [2]int64{200, 2000} ||
		p.ConfigTimeRange != [2]int64{10, 20} ||
		p.NodeAreaRange != [2]int64{1000, 4000} ||
		p.ClosestMatchPct != 0.15 {
		t.Fatalf("defaults drifted from Table II: %+v", p)
	}
}

func TestRunBasics(t *testing.T) {
	res, err := dreamsim.Run(quick(500))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTasks != 500 {
		t.Fatalf("total tasks %d", res.TotalTasks)
	}
	if res.CompletedTasks+res.TotalDiscardedTasks != 500 {
		t.Fatal("task accounting broken")
	}
	if res.Scenario != "partial" || !strings.Contains(res.Policy, "best-fit") {
		t.Fatalf("scenario/policy: %s/%s", res.Scenario, res.Policy)
	}
	if res.TotalSimulationTime <= 0 || res.TotalUsedNodes == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	p := quick(100)
	p.Placement = "quantum-fit"
	if _, err := dreamsim.Run(p); err == nil {
		t.Fatal("unknown placement accepted")
	}
	p = quick(100)
	p.Nodes = 0
	if _, err := dreamsim.Run(p); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestCompareSharesSeed(t *testing.T) {
	full, partial, err := dreamsim.Compare(quick(800))
	if err != nil {
		t.Fatal(err)
	}
	if full.Scenario != "full" || partial.Scenario != "partial" {
		t.Fatalf("scenarios: %s/%s", full.Scenario, partial.Scenario)
	}
	if full.Seed != partial.Seed || full.TotalTasks != partial.TotalTasks {
		t.Fatal("compare did not share inputs")
	}
	// The headline result of the paper.
	if !(partial.AvgWastedAreaPerTask < full.AvgWastedAreaPerTask) {
		t.Fatalf("wasted area partial %.1f !< full %.1f",
			partial.AvgWastedAreaPerTask, full.AvgWastedAreaPerTask)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, err := dreamsim.Run(quick(400))
	if err != nil {
		t.Fatal(err)
	}
	b, err := dreamsim.Run(quick(400))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgWaitingTimePerTask != b.AvgWaitingTimePerTask ||
		a.TotalSchedulerWorkload != b.TotalSchedulerWorkload {
		t.Fatal("same params diverged")
	}
}

func TestTableAndXMLOutputs(t *testing.T) {
	res, err := dreamsim.Run(quick(300))
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.TableI()
	if !strings.Contains(tbl, "avg_wasted_area_per_task") {
		t.Fatalf("TableI missing rows:\n%s", tbl)
	}
	var buf bytes.Buffer
	if err := res.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simulation-report") {
		t.Fatal("XML output wrong")
	}
	full, partial, err := dreamsim.Compare(quick(300))
	if err != nil {
		t.Fatal(err)
	}
	cmp := dreamsim.CompareTable(full, partial)
	if !strings.Contains(cmp, "full") || !strings.Contains(cmp, "partial") {
		t.Fatalf("CompareTable:\n%s", cmp)
	}
}

func TestTraceRoundTripThroughAPI(t *testing.T) {
	p := quick(300)
	var buf bytes.Buffer
	if err := dreamsim.GenerateTrace(&buf, p); err != nil {
		t.Fatal(err)
	}
	direct, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := dreamsim.RunTrace(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if direct.AvgWaitingTimePerTask != traced.AvgWaitingTimePerTask ||
		direct.CompletedTasks != traced.CompletedTasks {
		t.Fatal("trace-driven run diverged from synthetic run")
	}
}

func TestRunTraceRejectsGarbage(t *testing.T) {
	if _, err := dreamsim.RunTrace(strings.NewReader("junk"), quick(10)); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestFigureRegistry(t *testing.T) {
	ids := dreamsim.FigureIDs()
	if len(ids) != 9 {
		t.Fatalf("expected 9 figures, got %d", len(ids))
	}
	if _, err := dreamsim.RunFigure("99z", []int{100}, dreamsim.DefaultParams()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestScaledTaskCounts(t *testing.T) {
	got := dreamsim.ScaledTaskCounts(10000)
	want := []int{1000, 2000, 5000, 10000}
	if len(got) != len(want) {
		t.Fatalf("ScaledTaskCounts: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScaledTaskCounts: %v", got)
		}
	}
	if tiny := dreamsim.ScaledTaskCounts(10); len(tiny) != 1 || tiny[0] != 10 {
		t.Fatalf("tiny grid: %v", tiny)
	}
}

// TestFigureShapesSmall regenerates every figure on a reduced grid and
// checks the paper's curve ordering is reproduced.
func TestFigureShapesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	base := dreamsim.DefaultParams()
	grid := []int{1000, 2000}
	for _, id := range dreamsim.FigureIDs() {
		fig, err := dreamsim.RunFigure(id, grid, base)
		if err != nil {
			t.Fatal(err)
		}
		if !fig.ShapeHolds() {
			t.Errorf("figure %s shape not reproduced:\n%s", id, fig.Table())
		}
		if len(fig.With) != len(grid) || len(fig.Without) != len(grid) {
			t.Fatalf("figure %s series lengths wrong", id)
		}
		csv := fig.CSV()
		if !strings.Contains(csv, "with partial configuration") {
			t.Fatalf("figure %s CSV:\n%s", id, csv)
		}
		plotted := fig.Plot()
		if !strings.Contains(plotted, "+ = with partial configuration") {
			t.Fatalf("figure %s plot:\n%s", id, plotted)
		}
		if !strings.Contains(fig.Summary(), "REPRODUCED") {
			t.Errorf("figure %s summary: %s", id, fig.Summary())
		}
	}
}

func TestSortedPhaseNames(t *testing.T) {
	res, err := dreamsim.Run(quick(200))
	if err != nil {
		t.Fatal(err)
	}
	names := dreamsim.SortedPhaseNames(res)
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("phase names unsorted: %v", names)
		}
	}
}

func TestAblationKnobs(t *testing.T) {
	p := quick(400)
	p.DisableSuspension = true
	res, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDiscardedTasks == 0 {
		t.Fatal("suspension off produced no discards under overload")
	}
	p = quick(400)
	p.LoadBalance = true
	res, err = dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Policy, "+lb") {
		t.Fatalf("policy: %s", res.Policy)
	}
	p = quick(400)
	p.PoissonArrivals = true
	if _, err := dreamsim.Run(p); err != nil {
		t.Fatal(err)
	}
	p = quick(400)
	p.BitstreamBandwidth = 8000
	p.DataBandwidth = 4000
	p.NetworkDelayRange = [2]int64{5, 15}
	if _, err := dreamsim.Run(p); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadShapeKnobs(t *testing.T) {
	// Heavy-tailed runtimes: most tasks are short, so mean turnaround
	// falls well below the uniform-runtime run on the same seed.
	base := quick(600)
	uni, err := dreamsim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	heavy := base
	heavy.TaskTimeDistribution = "lognormal"
	ln, err := dreamsim.Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if !(ln.AvgRunningTimePerTask < uni.AvgRunningTimePerTask) {
		t.Fatalf("lognormal turnaround %v !< uniform %v",
			ln.AvgRunningTimePerTask, uni.AvgRunningTimePerTask)
	}
	heavy.TaskTimeDistribution = "pareto"
	if _, err := dreamsim.Run(heavy); err != nil {
		t.Fatal(err)
	}
	heavy.TaskTimeDistribution = "cauchy"
	if _, err := dreamsim.Run(heavy); err == nil {
		t.Fatal("unknown distribution accepted")
	}

	// Popularity skew: with Zipf Cprefs, allocations (configuration
	// reuse) become more common than under uniform popularity.
	pop := quick(600)
	pop.ConfigPopularity = 1.5
	popular, err := dreamsim.Run(pop)
	if err != nil {
		t.Fatal(err)
	}
	if !(popular.Phases["allocate"] > uni.Phases["allocate"]) {
		t.Fatalf("popularity skew did not raise reuse: %d vs %d",
			popular.Phases["allocate"], uni.Phases["allocate"])
	}
}
