package dreamsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// Cross-process determinism for the scenario DSL: every committed
// example scenario, swept over both reconfiguration methods, must
// serialise byte-identically across fresh processes and across
// parallelism levels 1, 4 and 8. As with the matrix sweep, re-exec is
// the only way to catch nondeterminism seeded per process (map
// iteration hashing, goroutine interleavings).

const (
	scnDetChildEnv = "DREAMSIM_SCENARIODET_CHILD"
	scnDetOutEnv   = "DREAMSIM_SCENARIODET_OUT"
	scnDetParEnv   = "DREAMSIM_SCENARIODET_PAR"
)

// TestScenarioDeterminismChild is the re-exec target: it sweeps the
// example scenarios and writes the serialised cells where the parent
// asked. Outside a child process it is skipped.
func TestScenarioDeterminismChild(t *testing.T) {
	if os.Getenv(scnDetChildEnv) != "1" {
		t.Skip("helper for TestScenarioCrossProcessByteIdentical")
	}
	par := 1
	if n, err := strconv.Atoi(os.Getenv(scnDetParEnv)); err == nil && n > 0 {
		par = n
	}
	paths, err := filepath.Glob(filepath.Join("examples", "scenarios", "*.scn"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example scenarios: %v", err)
	}
	var set []NamedScenario
	for _, path := range paths {
		scn, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		set = append(set, scn)
	}
	p := DefaultParams()
	p.Nodes = 60
	p.Tasks = 0
	p.Parallelism = par
	cells, err := RunScenarioSet(p, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(cells, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv(scnDetOutEnv), blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioCrossProcessByteIdentical(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pars := []string{"1", "4", "8"}
	var blobs [][]byte
	for i, par := range pars {
		out := filepath.Join(dir, fmt.Sprintf("run-%d.json", i))
		cmd := exec.Command(exe, "-test.run=^TestScenarioDeterminismChild$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			scnDetChildEnv+"=1", scnDetOutEnv+"="+out, scnDetParEnv+"="+par)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child par=%s: %v\n%s", par, err, msg)
		}
		blob, err := os.ReadFile(out)
		if err != nil || len(blob) == 0 {
			t.Fatalf("child par=%s wrote no output: %v", par, err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Errorf("par=%s scenario sweep JSON differs from par=%s (%d vs %d bytes)",
				pars[i], pars[0], len(blobs[i]), len(blobs[0]))
		}
	}
	// The per-class rows are omitempty: their presence proves the
	// multi-class path (not the degenerate fold) actually ran.
	if !bytes.Contains(blobs[0], []byte(`"Classes"`)) {
		t.Error("scenario sweep recorded no per-class rows; the determinism check is vacuous")
	}
}
