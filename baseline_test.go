package dreamsim_test

import (
	"testing"

	"dreamsim"
)

func TestRunBaseline(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 500
	bp := dreamsim.BaselineParams{
		Resources:  50,
		SpeedRange: [2]float64{1, 1},
	}
	res, err := dreamsim.RunBaseline(bp, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 500 || res.Makespan <= 0 {
		t.Fatalf("baseline result: %+v", res)
	}
	if res.AvgUtilization <= 0 || res.AvgUtilization > 1 {
		t.Fatalf("utilization: %v", res.AvgUtilization)
	}
	if res.ReconfigResources != 0 || res.TotalSwitches != 0 {
		t.Fatalf("pure GridSim pool has reconfigurables: %+v", res)
	}
}

func TestRunBaselineDeterministic(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 30
	p.Tasks = 300
	bp := dreamsim.BaselineParams{Resources: 30, SpeedRange: [2]float64{0.5, 2}}
	a, err := dreamsim.RunBaseline(bp, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dreamsim.RunBaseline(bp, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("baseline not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestRunBaselineSpeedupHelps(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 800
	gpp := dreamsim.BaselineParams{Resources: 50, SpeedRange: [2]float64{1, 1}}
	slow, err := dreamsim.RunBaseline(gpp, p)
	if err != nil {
		t.Fatal(err)
	}
	cr := gpp
	cr.ReconfigurableShare = 1
	cr.Speedup = 4
	cr.ReconfigDelay = 15
	fast, err := dreamsim.RunBaseline(cr, p)
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.Makespan < slow.Makespan) {
		t.Fatalf("speedup ignored: %d vs %d", fast.Makespan, slow.Makespan)
	}
	if fast.TotalSwitches == 0 || fast.ReconfigResources != 50 {
		t.Fatalf("CRGridSim pool wrong: %+v", fast)
	}
}

func TestRunBaselineRejectsBadParams(t *testing.T) {
	p := dreamsim.DefaultParams()
	if _, err := dreamsim.RunBaseline(dreamsim.BaselineParams{}, p); err == nil {
		t.Fatal("zero resources accepted")
	}
	p.Nodes = 0
	if _, err := dreamsim.RunBaseline(dreamsim.BaselineParams{Resources: 5, SpeedRange: [2]float64{1, 1}}, p); err == nil {
		t.Fatal("invalid sim params accepted")
	}
}
